package core

import "fmt"

// Filter objects (§3.2) are the generic interposition mechanism that
// defines data-flow boundaries. A filter object is associated with an I/O
// channel (file handle, socket, pipe, HTTP output, email, SQL) or a
// function-call interface, and the runtime invokes it when data crosses.
//
// A filter object implements any subset of the three interposition methods
// of Table 3 (filter_read, filter_write, filter_func) by satisfying the
// corresponding interface below. Channels hold []Filter and invoke each
// method the filter provides.
type Filter any

// ReadFilter is invoked when data comes in through a data-flow boundary;
// it can assign initial policies to the data (e.g. de-serializing them from
// persistent storage, or marking socket input as untrusted), veto the read,
// or rewrite the data.
type ReadFilter interface {
	FilterRead(ch *Channel, data String, offset int64) (String, error)
}

// WriteFilter is invoked when data is exported through a data-flow
// boundary; it typically invokes assertion checks (the default filter) or
// serializes policy objects to persistent storage, and may rewrite the
// in-transit data.
type WriteFilter interface {
	FilterWrite(ch *Channel, data String, offset int64) (String, error)
}

// FuncFilter checks and/or proxies a function call when a filter object is
// attached to a function-call interface (e.g. the SQL query function or an
// encryption routine). It may inspect or rewrite both arguments and
// results.
type FuncFilter interface {
	FilterFunc(ch *Channel, args []any) ([]any, error)
}

// ExportCheckFilter is the default filter object that RESIN pre-defines on
// every output channel (Figure 3 of the paper):
//
//	def filter_write(self, buf):
//	    for p in policy_get(buf):
//	        if hasattr(p, 'export_check'):
//	            p.export_check(self.context)
//	    return buf
//
// It walks the in-transit data's policies and invokes ExportCheck with the
// channel's context; any veto aborts the write. Data with no policies
// passes freely — programmer-specified filters (e.g. the code-import
// filter) are needed to *require* a policy.
type ExportCheckFilter struct{}

// FilterWrite invokes ExportCheck on every policy attached to any byte of
// data. Each distinct policy object is checked once per write even if it
// covers several spans.
func (ExportCheckFilter) FilterWrite(ch *Channel, data String, offset int64) (String, error) {
	var checked []Policy
	err := data.EachTaintedSpan(func(start, end int, ps *PolicySet) error {
		return ps.Each(func(p Policy) error {
			for _, q := range checked {
				if samePolicy(p, q) {
					return nil
				}
			}
			checked = append(checked, p)
			if err := p.ExportCheck(ch.Context()); err != nil {
				return &AssertionError{Policy: p, Context: ch.Context(), Op: "export_check", Err: err}
			}
			return nil
		})
	})
	return data, err
}

// ReadCheckFilter is the input-side counterpart of ExportCheckFilter: it
// invokes ReadCheck on every policy of incoming data that implements
// ReadChecker. The RESIN-aware web server's static-file path and the
// interpreter's code-import channel build on this.
type ReadCheckFilter struct{}

// FilterRead invokes ReadCheck on every ReadChecker policy of data.
func (ReadCheckFilter) FilterRead(ch *Channel, data String, offset int64) (String, error) {
	var checked []Policy
	err := data.EachTaintedSpan(func(start, end int, ps *PolicySet) error {
		return ps.Each(func(p Policy) error {
			rc, ok := p.(ReadChecker)
			if !ok {
				return nil
			}
			for _, q := range checked {
				if samePolicy(p, q) {
					return nil
				}
			}
			checked = append(checked, p)
			if err := rc.ReadCheck(ch.Context()); err != nil {
				return &AssertionError{Policy: p, Context: ch.Context(), Op: "read_check", Err: err}
			}
			return nil
		})
	})
	return data, err
}

// TaintReadFilter is a read filter that attaches the given policies to all
// incoming data. Input boundaries (HTTP parameters, socket reads) use it
// to mark data as untrusted the moment it enters the runtime.
//
// A filter built with NewTaintReadFilter attaches one pre-built,
// interned policy set, so every string tainted through it shares a
// single canonical set and downstream comparisons and unions take the
// pointer fast paths. A zero-value filter with Policies set directly
// also works, rebuilding the set per read.
//
// Mutating Policies after NewTaintReadFilter is safe but wasteful: any
// divergence from the constructed state — append, truncation, or
// in-place replacement — is detected per read and the filter falls
// back to rebuilding the set from Policies, so data is always tainted
// with exactly the current contents of Policies; only the interning
// speedup is lost. Build a fresh filter when the policies change.
type TaintReadFilter struct {
	Policies []Policy

	// set is the pre-built interned policy set when constructed via
	// NewTaintReadFilter; snapshot is an independent copy of the
	// policies it was built from, against which FilterRead checks
	// Policies for mutations before trusting set.
	set      *PolicySet
	snapshot []Policy
}

// NewTaintReadFilter builds a TaintReadFilter whose policy set is
// constructed once and interned. Boundaries that taint high volumes of
// input with the same policies (an HTTP server's parameter inputs, a
// socket reader) should build their filter this way and reuse it.
func NewTaintReadFilter(ps ...Policy) *TaintReadFilter {
	return &TaintReadFilter{
		Policies: append([]Policy(nil), ps...),
		set:      NewPolicySet(ps...).Intern(),
		snapshot: append([]Policy(nil), ps...),
	}
}

// FilterRead attaches the configured policies to every byte of data.
func (f *TaintReadFilter) FilterRead(ch *Channel, data String, offset int64) (String, error) {
	if f.set != nil && f.policiesUnchanged() {
		return data.withSet(f.set), nil
	}
	return data.WithPolicy(f.Policies...), nil
}

// policiesUnchanged reports whether Policies still matches the
// snapshot the pre-built set was constructed from.
func (f *TaintReadFilter) policiesUnchanged() bool {
	if len(f.Policies) != len(f.snapshot) {
		return false
	}
	for i := range f.snapshot {
		if !samePolicy(f.Policies[i], f.snapshot[i]) {
			return false
		}
	}
	return true
}

// StripPolicyFilter is a write filter that removes policies matching Pred
// from in-transit data. The paper's example: "a programmer may choose to
// attach a filter object to the encryption function that removes policy
// objects for confidentiality assertions" (§3.2).
type StripPolicyFilter struct {
	Pred func(Policy) bool
}

// FilterWrite strips matching policies and passes the data on.
func (f *StripPolicyFilter) FilterWrite(ch *Channel, data String, offset int64) (String, error) {
	if f.Pred == nil {
		return data, nil
	}
	return data.WithoutPolicyIf(f.Pred), nil
}

// RejectSequenceFilter is a write filter that vetoes data containing a
// forbidden byte sequence originating from tainted input. It implements
// the paper's HTTP response-splitting defense (§3.2, §5.4): "a developer
// can use a filter to reject any CR-LF-CR-LF sequences in the HTTP header
// that came from user input". If TaintedOnly is false the sequence is
// rejected wherever it appears.
type RejectSequenceFilter struct {
	Sequence    string
	TaintedOnly bool
	// IsTainted classifies policies as taint markers; required when
	// TaintedOnly is true.
	IsTainted func(Policy) bool
}

// FilterWrite scans for the forbidden sequence.
func (f *RejectSequenceFilter) FilterWrite(ch *Channel, data String, offset int64) (String, error) {
	if f.Sequence == "" {
		return data, nil
	}
	raw := data.Raw()
	for i := 0; ; {
		j := indexFrom(raw, f.Sequence, i)
		if j < 0 {
			return data, nil
		}
		if !f.TaintedOnly {
			return data, fmt.Errorf("resin: forbidden sequence %q at offset %d", f.Sequence, j)
		}
		for k := j; k < j+len(f.Sequence); k++ {
			if data.PoliciesAt(k).Any(f.IsTainted) {
				return data, fmt.Errorf("resin: forbidden sequence %q at offset %d derived from untrusted input", f.Sequence, j)
			}
		}
		i = j + 1
	}
}

func indexFrom(s, sub string, from int) int {
	if from >= len(s) {
		return -1
	}
	i := index(s[from:], sub)
	if i < 0 {
		return -1
	}
	return from + i
}

func index(s, sub string) int {
	n := len(sub)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(s); i++ {
		if s[i:i+n] == sub {
			return i
		}
	}
	return -1
}

// FuncFilterFunc adapts a plain function to the FuncFilter interface,
// mirroring how the paper's applications attach small closures to
// function-call boundaries.
type FuncFilterFunc func(ch *Channel, args []any) ([]any, error)

// FilterFunc calls the wrapped function.
func (f FuncFilterFunc) FilterFunc(ch *Channel, args []any) ([]any, error) { return f(ch, args) }

// WriteFilterFunc adapts a plain function to the WriteFilter interface.
type WriteFilterFunc func(ch *Channel, data String, offset int64) (String, error)

// FilterWrite calls the wrapped function.
func (f WriteFilterFunc) FilterWrite(ch *Channel, data String, offset int64) (String, error) {
	return f(ch, data, offset)
}

// ReadFilterFunc adapts a plain function to the ReadFilter interface.
type ReadFilterFunc func(ch *Channel, data String, offset int64) (String, error)

// FilterRead calls the wrapped function.
func (f ReadFilterFunc) FilterRead(ch *Channel, data String, offset int64) (String, error) {
	return f(ch, data, offset)
}
