package core

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the string operation suite with character-level
// policy propagation (§3.4). In the paper these are the PHP virtual machine
// opcode handlers (assignment, concatenation) and the C library functions
// (substr, printf, ...) that were modified to propagate policies; here they
// are methods and functions over String.

// Concat concatenates any number of tracked strings; each input's spans are
// shifted into place, so "foo"+p1 . "bar"+p2 yields spans [0:3 p1][3:6 p2].
func Concat(parts ...String) String {
	switch len(parts) {
	case 0:
		return String{}
	case 1:
		return parts[0]
	}
	nbytes, nspans := 0, 0
	for _, p := range parts {
		nbytes += len(p.s)
		nspans += len(p.spans)
	}
	lin := lineageOn()
	var b Builder
	b.Grow(nbytes, nspans)
	for _, p := range parts {
		if lin && len(p.spans) > 0 {
			lineageRecordSpans(p, "concat", "core.concat")
		}
		b.appendQuiet(p)
	}
	return b.String()
}

// Slice returns the substring [i, j) with the policies of exactly those
// bytes: taking the first three bytes of "foobar" back out recovers "foo"
// carrying only p1. Indices are clipped to the string bounds.
func (t String) Slice(i, j int) String {
	if i < 0 {
		i = 0
	}
	if j > len(t.s) {
		j = len(t.s)
	}
	if i >= j {
		return String{}
	}
	var spans []span
	for _, sp := range t.spans {
		s, e := sp.start, sp.end
		if e <= i || s >= j {
			continue
		}
		if s < i {
			s = i
		}
		if e > j {
			e = j
		}
		spans = append(spans, span{s - i, e - i, sp.ps})
	}
	return makeString(t.s[i:j], spans)
}

// ByteAt returns the byte at index i together with its policy set.
func (t String) ByteAt(i int) (byte, *PolicySet) {
	return t.s[i], t.PoliciesAt(i)
}

// Repeat returns the string repeated n times, each copy keeping its spans.
func (t String) Repeat(n int) String {
	if n <= 0 {
		return String{}
	}
	parts := make([]String, n)
	for i := range parts {
		parts[i] = t
	}
	return Concat(parts...)
}

// Index returns the byte offset of the first occurrence of sub, or -1.
func (t String) Index(sub string) int { return strings.Index(t.s, sub) }

// Contains reports whether sub occurs in the string.
func (t String) Contains(sub string) bool { return strings.Contains(t.s, sub) }

// HasPrefix reports whether the string begins with prefix.
func (t String) HasPrefix(prefix string) bool { return strings.HasPrefix(t.s, prefix) }

// HasSuffix reports whether the string ends with suffix.
func (t String) HasSuffix(suffix string) bool { return strings.HasSuffix(t.s, suffix) }

// EqualsRaw reports whether the raw text equals s (policies ignored;
// comparisons are control flow, which RESIN deliberately does not track).
func (t String) EqualsRaw(s string) bool { return t.s == s }

// Split splits around every instance of sep, propagating each fragment's
// policies. sep must be non-empty.
func (t String) Split(sep string) []String {
	if sep == "" {
		out := make([]String, 0, len(t.s))
		for i := range t.s {
			out = append(out, t.Slice(i, i+1))
		}
		return out
	}
	var out []String
	start := 0
	for {
		i := strings.Index(t.s[start:], sep)
		if i < 0 {
			out = append(out, t.Slice(start, len(t.s)))
			return out
		}
		out = append(out, t.Slice(start, start+i))
		start += i + len(sep)
	}
}

// SplitN is like Split but returns at most n fragments; the last fragment
// holds the unsplit remainder. n <= 0 behaves like Split.
func (t String) SplitN(sep string, n int) []String {
	if n <= 0 || sep == "" {
		return t.Split(sep)
	}
	var out []String
	start := 0
	for len(out) < n-1 {
		i := strings.Index(t.s[start:], sep)
		if i < 0 {
			break
		}
		out = append(out, t.Slice(start, start+i))
		start += i + len(sep)
	}
	out = append(out, t.Slice(start, len(t.s)))
	return out
}

// Fields splits the string around runs of ASCII whitespace, propagating
// each field's policies.
func (t String) Fields() []String {
	var out []String
	i := 0
	for i < len(t.s) {
		for i < len(t.s) && isSpace(t.s[i]) {
			i++
		}
		j := i
		for j < len(t.s) && !isSpace(t.s[j]) {
			j++
		}
		if j > i {
			out = append(out, t.Slice(i, j))
		}
		i = j
	}
	return out
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// Join concatenates elems, inserting sep between each pair; all policies
// propagate by position.
func Join(elems []String, sep String) String {
	var b Builder
	for i, e := range elems {
		if i > 0 {
			b.Append(sep)
		}
		b.Append(e)
	}
	return b.String()
}

// TrimSpace returns the string with leading and trailing ASCII whitespace
// removed, keeping the surviving bytes' policies.
func (t String) TrimSpace() String {
	i, j := 0, len(t.s)
	for i < j && isSpace(t.s[i]) {
		i++
	}
	for j > i && isSpace(t.s[j-1]) {
		j--
	}
	return t.Slice(i, j)
}

// TrimPrefix returns the string without the given leading prefix.
func (t String) TrimPrefix(prefix string) String {
	if strings.HasPrefix(t.s, prefix) {
		return t.Slice(len(prefix), len(t.s))
	}
	return t
}

// TrimSuffix returns the string without the given trailing suffix.
func (t String) TrimSuffix(suffix string) String {
	if strings.HasSuffix(t.s, suffix) {
		return t.Slice(0, len(t.s)-len(suffix))
	}
	return t
}

// Replace returns a copy with the first n non-overlapping instances of old
// replaced by new (all if n < 0). Bytes copied from the receiver keep
// their policies; every inserted copy of new keeps new's policies. old
// must be non-empty.
func (t String) Replace(old string, new String, n int) String {
	if old == "" || n == 0 {
		return t
	}
	if lineageOn() {
		if len(t.spans) > 0 {
			lineageRecordSpans(t, "replace", "core.replace")
		}
		if len(new.spans) > 0 {
			lineageRecordSpans(new, "replace", "core.replace")
		}
	}
	var b Builder
	start := 0
	for n != 0 {
		i := strings.Index(t.s[start:], old)
		if i < 0 {
			break
		}
		b.appendQuiet(t.Slice(start, start+i))
		b.appendQuiet(new)
		start += i + len(old)
		if n > 0 {
			n--
		}
	}
	b.appendQuiet(t.Slice(start, len(t.s)))
	return b.String()
}

// ReplaceAll replaces every non-overlapping instance of old with new.
func (t String) ReplaceAll(old string, new String) String { return t.Replace(old, new, -1) }

// MapBytes returns a copy with each byte replaced by fn(byte); the length
// is unchanged so every byte keeps its policy set. Used for case mapping
// and in-place escapes that preserve length.
func (t String) MapBytes(fn func(byte) byte) String {
	if len(t.s) == 0 {
		return t
	}
	buf := make([]byte, len(t.s))
	for i := 0; i < len(t.s); i++ {
		buf[i] = fn(t.s[i])
	}
	return String{s: string(buf), spans: t.spans}
}

// ToUpper returns the string with ASCII letters upper-cased; spans are
// unchanged because the mapping is length-preserving.
func (t String) ToUpper() String {
	return t.MapBytes(func(c byte) byte {
		if 'a' <= c && c <= 'z' {
			return c - 'a' + 'A'
		}
		return c
	})
}

// ToLower returns the string with ASCII letters lower-cased.
func (t String) ToLower() String {
	return t.MapBytes(func(c byte) byte {
		if 'A' <= c && c <= 'Z' {
			return c - 'A' + 'a'
		}
		return c
	})
}

// ToInt parses the string as a base-10 integer. Converting characters to a
// number is a merging operation (§3.4.2): the result is a single datum, so
// the policies of every byte are merged into the Int's policy set.
func (t String) ToInt() (Int, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(t.s), 10, 64)
	if err != nil {
		return Int{}, err
	}
	ps := EmptySet
	for _, sp := range t.spans {
		merged, merr := MergePolicies(ps, sp.ps)
		if merr != nil {
			return Int{}, merr
		}
		ps = merged
	}
	return Int{v: v, ps: ps}, nil
}

// Builder incrementally assembles a tracked string, the analogue of
// strings.Builder. The zero value is ready to use.
//
// The span list is an arena the builder appends into, kept canonical as
// it goes (coalescing adjacent same-policy spans with a pointer-fast
// Equal). String() hands the arena to the produced String without
// copying; the builder then goes copy-on-write, cloning the arena only
// if it is mutated again afterwards. The common build-once pattern
// (Concat, Format, query rewriting) therefore allocates no span copy at
// all, and Reset lets a long-lived builder reuse the arena across
// renders.
type Builder struct {
	buf   strings.Builder
	spans []span
	// shared marks the spans arena as referenced by a String produced
	// by a previous String() call; any further mutation must clone it
	// first (copy-on-write).
	shared bool
}

// own ensures the spans arena is exclusively the builder's, cloning it
// if a produced String still references it.
func (b *Builder) own() {
	if b.shared {
		b.spans = append([]span(nil), b.spans...)
		b.shared = false
	}
}

// Grow pre-allocates capacity for at least nbytes more bytes and nspans
// more policy spans, the way strings.Builder.Grow does for text.
func (b *Builder) Grow(nbytes, nspans int) {
	if nbytes > 0 {
		b.buf.Grow(nbytes)
	}
	// A shared arena must be replaced even when it has spare capacity:
	// the next mutation would otherwise clone it to an exact-length
	// slice and discard this reservation.
	if nspans > 0 && (b.shared || cap(b.spans)-len(b.spans) < nspans) {
		grown := make([]span, len(b.spans), len(b.spans)+nspans)
		copy(grown, b.spans)
		b.spans = grown
		b.shared = false
	}
}

// Reset empties the builder for reuse, keeping the spans arena when no
// produced String references it.
func (b *Builder) Reset() {
	b.buf.Reset()
	if b.shared {
		b.spans = nil
		b.shared = false
	} else {
		b.spans = b.spans[:0]
	}
}

// Append adds a tracked string to the builder.
func (b *Builder) Append(t String) {
	if len(t.spans) > 0 && lineageOn() {
		lineageRecordSpans(t, "append", "core.append")
	}
	b.appendQuiet(t)
}

// appendQuiet is Append without the lineage report; compound ops
// (Concat, Replace) record one edge at their own level instead of one
// per internal append.
func (b *Builder) appendQuiet(t String) {
	off := b.buf.Len()
	b.buf.WriteString(t.s)
	if len(t.spans) == 0 {
		return
	}
	b.own()
	for _, sp := range t.spans {
		// Coalesce with the previous span when possible to keep the span
		// list canonical as we go.
		if n := len(b.spans); n > 0 && b.spans[n-1].end == sp.start+off && b.spans[n-1].ps.Equal(sp.ps) {
			b.spans[n-1].end = sp.end + off
			continue
		}
		b.spans = append(b.spans, span{sp.start + off, sp.end + off, sp.ps})
	}
}

// AppendRaw adds an untracked raw string to the builder.
func (b *Builder) AppendRaw(s string) { b.buf.WriteString(s) }

// AppendByte adds one untracked byte.
func (b *Builder) AppendByte(c byte) { b.buf.WriteByte(c) }

// AppendBytePolicies adds one byte carrying the given policy set.
func (b *Builder) AppendBytePolicies(c byte, ps *PolicySet) {
	off := b.buf.Len()
	b.buf.WriteByte(c)
	if ps.IsEmpty() {
		return
	}
	b.own()
	if n := len(b.spans); n > 0 && b.spans[n-1].end == off && b.spans[n-1].ps.Equal(ps) {
		b.spans[n-1].end = off + 1
		return
	}
	b.spans = append(b.spans, span{off, off + 1, ps})
}

// Len returns the number of bytes accumulated so far.
func (b *Builder) Len() int { return b.buf.Len() }

// String returns the accumulated tracked string without copying the
// span arena; the builder clones it lazily if mutated again.
func (b *Builder) String() String {
	if len(b.spans) == 0 {
		return String{s: b.buf.String()}
	}
	b.shared = true
	return String{s: b.buf.String(), spans: b.spans}
}

// Format is the tracked analogue of fmt.Sprintf for the verbs the
// applications need: %s and %v accept String (propagating policies), Int
// (propagating its set across the rendered digits), or any plain Go value;
// %d accepts Int or plain integers; %q quotes like fmt; %% is a literal
// percent. Unknown verbs fall back to fmt.Sprintf on the raw value.
func Format(format string, args ...any) String {
	var b Builder
	ai := 0
	next := func() any {
		if ai < len(args) {
			a := args[ai]
			ai++
			return a
		}
		return "%!(MISSING)"
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.AppendByte(c)
			continue
		}
		if i+1 >= len(format) {
			b.AppendByte('%')
			break
		}
		i++
		verb := format[i]
		switch verb {
		case '%':
			b.AppendByte('%')
		case 's', 'v', 'd', 'q':
			appendArg(&b, verb, next())
		default:
			b.AppendRaw(fmt.Sprintf("%"+string(verb), next()))
		}
	}
	return b.String()
}

func appendArg(b *Builder, verb byte, a any) {
	switch v := a.(type) {
	case String:
		if verb == 'q' {
			// Quoting reshapes the bytes; attach the union of the input's
			// policies to the whole quoted form (a merge, conservatively
			// via union since quoting is structure-preserving enough).
			b.Append(NewString(strconv.Quote(v.Raw())).withSet(v.Policies()))
			return
		}
		b.Append(v)
	case Int:
		b.Append(v.ToString())
	default:
		b.AppendRaw(fmt.Sprintf("%"+string(verb), a))
	}
}

// withSet attaches ps to every byte (internal helper; keeps WithPolicy's
// variadic signature clean for the public path).
func (t String) withSet(ps *PolicySet) String {
	return t.withSetRange(0, len(t.s), ps)
}
