package core

import (
	"strings"
	"testing"
	"testing/quick"
)

// Serializable test policies, registered once for the package tests.

type wirePasswordPolicy struct {
	Email string `json:"email"`
}

func (p *wirePasswordPolicy) ExportCheck(ctx *Context) error { return nil }

type wireACLPolicy struct {
	ACL []string `json:"acl"`
}

func (p *wireACLPolicy) ExportCheck(ctx *Context) error { return nil }

type unregisteredPolicy struct{}

func (p *unregisteredPolicy) ExportCheck(ctx *Context) error { return nil }

type wireWriteFilter struct {
	Owner string `json:"owner"`
}

func (f *wireWriteFilter) FilterWrite(ch *Channel, data String, off int64) (String, error) {
	return data, nil
}

func init() {
	RegisterPolicyClass("test.WirePasswordPolicy", &wirePasswordPolicy{})
	RegisterPolicyClass("test.WireACLPolicy", &wireACLPolicy{})
	RegisterFilterClass("test.WireWriteFilter", &wireWriteFilter{})
}

func TestPolicyRoundTrip(t *testing.T) {
	p := &wirePasswordPolicy{Email: "u@foo.com"}
	data, err := EncodePolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	gp, ok := got.(*wirePasswordPolicy)
	if !ok {
		t.Fatalf("decoded type %T", got)
	}
	if gp.Email != "u@foo.com" {
		t.Errorf("email = %q", gp.Email)
	}
	if gp == p {
		t.Error("decode must produce a fresh object")
	}
}

func TestPolicyRoundTripSliceFields(t *testing.T) {
	p := &wireACLPolicy{ACL: []string{"alice", "bob"}}
	data, err := EncodePolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	gp := got.(*wireACLPolicy)
	if len(gp.ACL) != 2 || gp.ACL[0] != "alice" || gp.ACL[1] != "bob" {
		t.Errorf("acl = %v", gp.ACL)
	}
}

func TestEncodeUnregisteredPolicyFails(t *testing.T) {
	if _, err := EncodePolicy(&unregisteredPolicy{}); err == nil {
		t.Fatal("unregistered policy must not serialize silently")
	}
}

func TestDecodeUnknownClassFails(t *testing.T) {
	if _, err := DecodePolicy([]byte(`{"class":"no.Such","fields":{}}`)); err == nil {
		t.Fatal("unknown class must fail")
	}
	if _, err := DecodePolicy([]byte(`garbage`)); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestRegisterRejectsBadPrototypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-pointer prototype must panic")
		}
	}()
	type valPolicy struct{}
	RegisterPolicyClass("test.Bad", nil)
	_ = valPolicy{}
}

func TestRegisterConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a name for a different type must panic")
		}
	}()
	RegisterPolicyClass("test.WirePasswordPolicy", &wireACLPolicy{})
}

func TestRegisterSameTypeIdempotent(t *testing.T) {
	// Same name, same type: allowed (init may run in tests and binaries).
	RegisterPolicyClass("test.WirePasswordPolicy", &wirePasswordPolicy{})
}

func TestFilterRoundTrip(t *testing.T) {
	f := &wireWriteFilter{Owner: "alice"}
	data, err := EncodeFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFilter(data)
	if err != nil {
		t.Fatal(err)
	}
	gf, ok := got.(*wireWriteFilter)
	if !ok || gf.Owner != "alice" {
		t.Fatalf("decoded %T %+v", got, got)
	}
}

func TestSpanRoundTrip(t *testing.T) {
	p1 := &wirePasswordPolicy{Email: "a@x"}
	p2 := &wireACLPolicy{ACL: []string{"g"}}
	s := Concat(
		NewString("plain-"),
		NewStringPolicy("pw", p1),
		NewString("-mid-"),
		NewStringPolicy("page", p2),
	)
	ann, err := EncodeSpans(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpans(s.Raw(), ann)
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw() != s.Raw() {
		t.Fatalf("raw = %q", got.Raw())
	}
	// Byte-for-byte policy class layout must match (objects are fresh).
	for i := 0; i < s.Len(); i++ {
		wantNames := policyClassNames(s.PoliciesAt(i))
		gotNames := policyClassNames(got.PoliciesAt(i))
		if wantNames != gotNames {
			t.Errorf("byte %d: classes %q vs %q", i, gotNames, wantNames)
		}
	}
	if err := got.invariantErr(); err != nil {
		t.Errorf("decoded string invariant: %v", err)
	}
}

func policyClassNames(ps *PolicySet) string {
	var names []string
	ps.Each(func(p Policy) error {
		n, _ := RegisteredPolicyName(p)
		names = append(names, n)
		return nil
	})
	// order-insensitive normal form
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ",")
}

func TestSpanRoundTripUntainted(t *testing.T) {
	ann, err := EncodeSpans(NewString("clean"))
	if err != nil {
		t.Fatal(err)
	}
	if ann != nil {
		t.Errorf("untainted annotation = %q, want nil", ann)
	}
	got, err := DecodeSpans("clean", nil)
	if err != nil || got.IsTainted() {
		t.Errorf("decode nil annotation: %v, tainted=%v", err, got.IsTainted())
	}
}

func TestEncodeSpansUnregisteredPolicyFails(t *testing.T) {
	s := NewStringPolicy("x", &unregisteredPolicy{})
	if _, err := EncodeSpans(s); err == nil {
		t.Fatal("span encoding must fail loudly on unregistered policies")
	}
}

func TestDecodeSpansBadJSON(t *testing.T) {
	if _, err := DecodeSpans("abc", []byte("{{{")); err == nil {
		t.Fatal("bad annotation must fail")
	}
}

func TestQuickSpanRoundTripRandomLayout(t *testing.T) {
	f := func(raw string, starts, ends []uint8) bool {
		s := NewString(raw)
		n := len(starts)
		if len(ends) < n {
			n = len(ends)
		}
		for i := 0; i < n && i < 4; i++ {
			p := &wirePasswordPolicy{Email: strings.Repeat("e", i+1)}
			s = s.WithPolicyRange(int(starts[i])%(len(raw)+1), int(ends[i])%(len(raw)+1), p)
		}
		ann, err := EncodeSpans(s)
		if err != nil {
			return false
		}
		got, err := DecodeSpans(s.Raw(), ann)
		if err != nil {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if policyClassNames(got.PoliciesAt(i)) != policyClassNames(s.PoliciesAt(i)) {
				return false
			}
			// Count must match too (identity differs, multiplicity must not).
			if got.PoliciesAt(i).Len() != s.PoliciesAt(i).Len() {
				return false
			}
		}
		return got.invariantErr() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
