package core

import (
	"sync"
	"testing"
)

type internPolicyA struct{ Tag string }

func (p *internPolicyA) ExportCheck(ctx *Context) error { return nil }

type internPolicyB struct{ Tag string }

func (p *internPolicyB) ExportCheck(ctx *Context) error { return nil }

// zeroA and zeroB are zero-sized policy types: Go may allocate all their
// instances at the same address, the worst case for address-derived IDs.
type zeroA struct{}

func (zeroA) ExportCheck(ctx *Context) error { return nil }

type zeroB struct{}

func (zeroB) ExportCheck(ctx *Context) error { return nil }

// valuePolicy is a comparable non-pointer policy; sets containing it
// cannot carry canonical IDs and must use the member-wise slow paths.
type valuePolicy struct{ K int }

func (valuePolicy) ExportCheck(ctx *Context) error { return nil }

func TestCanonicalIDsDecideEquality(t *testing.T) {
	p1 := &internPolicyA{Tag: "1"}
	p2 := &internPolicyA{Tag: "2"}

	a := NewPolicySet(p1, p2)
	b := NewPolicySet(p2, p1) // same members, different order, distinct instance
	if a == b {
		t.Fatal("uninterned constructions should be distinct instances")
	}
	if !a.Equal(b) {
		t.Error("sets with identical members must be Equal")
	}
	if a.Equal(NewPolicySet(p1)) {
		t.Error("different members reported equal")
	}
	// Distinct objects with identical fields are different policies.
	if NewPolicySet(&internPolicyA{Tag: "x"}).Equal(NewPolicySet(&internPolicyA{Tag: "x"})) {
		t.Error("identity semantics lost: field-equal objects are distinct policies")
	}
}

func TestZeroSizedPolicyTypesDoNotCollide(t *testing.T) {
	// &zeroA{} and &zeroB{} may share an address; the per-type salt must
	// keep their IDs distinct.
	a := NewPolicySet(&zeroA{})
	b := NewPolicySet(&zeroB{})
	if a.Equal(b) {
		t.Error("zero-sized policies of different types must not compare equal")
	}
	// Same type at the same address is the same policy object, per
	// samePolicy's pointer-identity semantics.
	za := &zeroA{}
	if !NewPolicySet(za).Equal(NewPolicySet(za)) {
		t.Error("same object must compare equal")
	}
}

func TestInternCanonicalizes(t *testing.T) {
	p1 := &internPolicyA{Tag: "i1"}
	p2 := &internPolicyA{Tag: "i2"}

	a := NewPolicySet(p1, p2).Intern()
	b := NewPolicySet(p2, p1).Intern()
	if a != b {
		t.Fatal("interning equal member sets must yield one canonical instance")
	}
	if !a.Interned() {
		t.Error("Intern must mark the canonical instance")
	}
	if a.Intern() != a {
		t.Error("interning an interned set is the identity")
	}
	if EmptySet.Intern() != EmptySet || NewPolicySet().Intern() != EmptySet {
		t.Error("empty set interns to EmptySet")
	}
}

func TestInternValuePolicyFallback(t *testing.T) {
	v := valuePolicy{K: 1}
	s := NewPolicySet(v, &internPolicyA{Tag: "p"})
	if s.Intern().Interned() {
		t.Error("sets with non-pointer members cannot intern")
	}
	// Slow-path semantics still hold: comparable value policies compare
	// by ==.
	if !s.Contains(valuePolicy{K: 1}) {
		t.Error("value policy membership by == lost")
	}
	if !NewPolicySet(v).Equal(NewPolicySet(valuePolicy{K: 1})) {
		t.Error("value policy sets with == members must be Equal")
	}
}

func TestUnionFastPaths(t *testing.T) {
	p1 := &internPolicyA{Tag: "u1"}
	p2 := &internPolicyA{Tag: "u2"}
	p3 := &internPolicyA{Tag: "u3"}
	big := NewPolicySet(p1, p2, p3)
	sub := NewPolicySet(p1, p3)

	if big.Union(sub) != big {
		t.Error("superset union must return the receiver unchanged")
	}
	if sub.Union(big) != big {
		t.Error("subset union must return the argument unchanged")
	}
	if big.Union(big) != big {
		t.Error("self union must be the identity")
	}
}

func TestInternedUnionMemoized(t *testing.T) {
	a := NewPolicySet(&internPolicyA{Tag: "m1"}, &internPolicyA{Tag: "m2"}).Intern()
	b := NewPolicySet(&internPolicyA{Tag: "m3"}).Intern()

	u1 := a.Union(b)
	u2 := a.Union(b)
	if u1 != u2 {
		t.Error("repeated interned unions must return the memoized instance")
	}
	if !u1.Interned() {
		t.Error("union of interned operands must intern its result")
	}
	if u1.Len() != 3 {
		t.Errorf("union len = %d, want 3", u1.Len())
	}
}

func TestInternConcurrent(t *testing.T) {
	p1 := &internPolicyA{Tag: "c1"}
	p2 := &internPolicyB{Tag: "c2"}
	const workers = 16
	results := make([]*PolicySet, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Alternate member order to exercise canonical sorting.
			if i%2 == 0 {
				results[i] = NewPolicySet(p1, p2).Intern()
			} else {
				results[i] = NewPolicySet(p2, p1).Intern()
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent interning must converge on one canonical instance")
		}
	}
}

func TestDecodeSpansCanonicalizesSets(t *testing.T) {
	RegisterPolicyClass("core.internPolicyA", &internPolicyA{})
	orig := NewString("secret").WithPolicy(&internPolicyA{Tag: "persist"})
	ann, err := EncodeSpans(orig)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := DecodeSpans("secret", ann)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.PoliciesAt(0).Interned() {
		t.Error("decoded policy sets must canonicalize into the intern table")
	}
}

func TestWithPolicySetSharesInstance(t *testing.T) {
	ps := NewPolicySet(&internPolicyA{Tag: "share"}).Intern()
	s := NewString("abcdef").WithPolicySet(ps)
	if got := s.PoliciesAt(0); got != ps {
		t.Errorf("WithPolicySet must attach the given set instance, got %p want %p", got, ps)
	}
	if err := s.invariantErr(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderCopyOnWrite(t *testing.T) {
	p1 := &internPolicyA{Tag: "b1"}
	p2 := &internPolicyA{Tag: "b2"}
	frag1 := NewStringPolicy("aaa", p1)
	frag2 := NewStringPolicy("bbb", p2)

	var b Builder
	b.Append(frag1)
	first := b.String()
	// Mutating the builder after String() must not disturb the
	// produced string: the next append both extends and coalesces.
	b.Append(frag1)
	b.Append(frag2)
	second := b.String()

	if first.Raw() != "aaa" || first.SpanCount() != 1 {
		t.Errorf("first snapshot corrupted by later appends: %s", first.Describe())
	}
	if !first.PoliciesAt(0).Equal(NewPolicySet(p1)) {
		t.Errorf("first snapshot policies corrupted: %s", first.Describe())
	}
	if second.Raw() != "aaaaaabbb" || second.SpanCount() != 2 {
		t.Errorf("second build wrong: %s", second.Describe())
	}
	if err := first.invariantErr(); err != nil {
		t.Fatal(err)
	}
	if err := second.invariantErr(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderResetReusesArena(t *testing.T) {
	p := &internPolicyA{Tag: "arena"}
	frag := NewStringPolicy("xy", p)
	var b Builder
	for round := 0; round < 3; round++ {
		b.Reset()
		b.Grow(64, 4)
		b.AppendRaw("<")
		b.Append(frag)
		b.AppendRaw(">")
		out := b.String()
		if out.Raw() != "<xy>" || out.SpanCount() != 1 {
			t.Fatalf("round %d: %s", round, out.Describe())
		}
		if err := out.invariantErr(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestBuilderResetAfterStringDoesNotCorrupt(t *testing.T) {
	p := &internPolicyA{Tag: "reset"}
	var b Builder
	b.Append(NewStringPolicy("hello", p))
	out := b.String()
	b.Reset()
	b.Append(NewStringPolicy("WORLD", p))
	_ = b.String()
	if out.Raw() != "hello" || out.SpanCount() != 1 || out.PoliciesAt(0).Len() != 1 {
		t.Errorf("string produced before Reset corrupted: %s", out.Describe())
	}
}

func TestReadInternStats(t *testing.T) {
	before := ReadInternStats()
	a := NewPolicySet(&internPolicyA{Tag: "s1"}, &internPolicyA{Tag: "s2"}).Intern()
	b := NewPolicySet(&internPolicyA{Tag: "s3"}).Intern()
	a.Union(b) // miss + store
	a.Union(b) // hit
	after := ReadInternStats()
	if after.Sets <= before.Sets {
		t.Error("interning new sets must grow the table")
	}
	if after.UnionHits <= before.UnionHits {
		t.Error("repeated interned union must count a cache hit")
	}
}

// TestInternHotSetSurvivesChurnBurst pins the generational eviction
// contract: a churn workload that pushes the table through several
// cap-crossing rotations must not evict sets that keep getting
// re-interned. Under the previous wholesale flush-at-cap every hot set
// lost its canonical instance on every flush.
func TestInternHotSetSurvivesChurnBurst(t *testing.T) {
	hotPolicies := make([]*internPolicyA, 16)
	hotCanon := make([]*PolicySet, len(hotPolicies))
	for i := range hotPolicies {
		hotPolicies[i] = &internPolicyA{Tag: "hot"}
		hotCanon[i] = NewPolicySet(hotPolicies[i]).Intern()
	}
	before := ReadInternStats()
	// 3× the cap of distinct single-member sets forces several
	// rotations; the hot sets are touched far more often than once per
	// generation window (cap/2 inserts), so every rotation finds them
	// young or promotes them.
	const churn = 3 * maxInternedSets
	for i := 0; i < churn; i++ {
		NewPolicySet(&internPolicyB{Tag: "churn"}).Intern()
		if i%1024 == 0 {
			for _, p := range hotPolicies {
				NewPolicySet(p).Intern()
			}
		}
	}
	after := ReadInternStats()
	if rotations := after.Flushes - before.Flushes; rotations < 2 {
		t.Fatalf("churn burst crossed the cap but caused only %d rotations", rotations)
	}
	if after.Promotions == before.Promotions {
		t.Error("no old-generation promotions recorded during the burst")
	}
	if after.Sets > maxInternedSets {
		t.Errorf("table exceeded its cap: %d sets", after.Sets)
	}
	for i, p := range hotPolicies {
		if c := NewPolicySet(p).Intern(); c != hotCanon[i] {
			t.Fatalf("hot set %d lost its canonical instance across the churn burst", i)
		}
	}
}

// BenchmarkInternChurnHotStability drives a churn-with-hot-set mix and
// reports how often a hot set's canonical instance is lost to eviction
// (canon-lost/op). Generational eviction keeps it at zero; the former
// wholesale flush lost the entire hot set at every cap crossing.
func BenchmarkInternChurnHotStability(b *testing.B) {
	hotPolicies := make([]*internPolicyA, 64)
	hotCanon := make([]*PolicySet, len(hotPolicies))
	for i := range hotPolicies {
		hotPolicies[i] = &internPolicyA{Tag: "hot"}
		hotCanon[i] = NewPolicySet(hotPolicies[i]).Intern()
	}
	lost := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPolicySet(&internPolicyB{Tag: "churn"}).Intern()
		j := i % len(hotPolicies)
		if c := NewPolicySet(hotPolicies[j]).Intern(); c != hotCanon[j] {
			lost++
			hotCanon[j] = c
		}
	}
	b.ReportMetric(float64(lost)/float64(b.N), "canon-lost/op")
}
