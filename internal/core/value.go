package core

import "strconv"

// Int is a tracked integer. Integers cannot carry byte-level spans, so a
// single policy set covers the whole value; arithmetic between tracked
// integers is a merging operation (§3.4.2) that invokes the policies'
// merge methods.
//
// Int values are immutable. The zero value is 0 with no policies.
type Int struct {
	v  int64
	ps *PolicySet
}

// NewInt wraps a plain integer with no policies.
func NewInt(v int64) Int { return Int{v: v} }

// NewIntPolicy wraps an integer with policies attached.
func NewIntPolicy(v int64, ps ...Policy) Int {
	return Int{v: v, ps: NewPolicySet(ps...)}
}

// Value returns the underlying integer value.
func (n Int) Value() int64 { return n.v }

// Policies returns the policy set attached to the value.
func (n Int) Policies() *PolicySet {
	if n.ps == nil {
		return EmptySet
	}
	return n.ps
}

// IsTainted reports whether the value carries any policy.
func (n Int) IsTainted() bool { return n.ps.Len() > 0 }

// WithPolicy returns a copy with the given policies added.
func (n Int) WithPolicy(ps ...Policy) Int {
	out := n.Policies()
	for _, p := range ps {
		out = out.Add(p)
	}
	return Int{v: n.v, ps: out}
}

// WithoutPolicy returns a copy with the given policy objects removed.
func (n Int) WithoutPolicy(ps ...Policy) Int {
	out := n.Policies()
	for _, p := range ps {
		out = out.Remove(p)
	}
	return Int{v: n.v, ps: out}
}

// Add returns n+m with the operands' policies merged.
func (n Int) Add(m Int) (Int, error) { return n.binop(m, n.v+m.v) }

// Sub returns n-m with the operands' policies merged.
func (n Int) Sub(m Int) (Int, error) { return n.binop(m, n.v-m.v) }

// Mul returns n*m with the operands' policies merged.
func (n Int) Mul(m Int) (Int, error) { return n.binop(m, n.v*m.v) }

// Div returns n/m with the operands' policies merged. Division by zero
// panics, as for plain Go integers.
func (n Int) Div(m Int) (Int, error) { return n.binop(m, n.v/m.v) }

func (n Int) binop(m Int, result int64) (Int, error) {
	ps, err := MergePolicies(n.Policies(), m.Policies())
	if err != nil {
		return Int{}, err
	}
	return Int{v: result, ps: ps}, nil
}

// ToString renders the integer as a tracked decimal string whose every
// byte carries the integer's policy set.
func (n Int) ToString() String {
	return NewString(strconv.FormatInt(n.v, 10)).withSet(n.Policies())
}

// Checksum computes a simple additive checksum of a tracked string,
// merging the policies of every byte into the result — the paper's
// motivating example of an unavoidable merge (§3.4.2: "string characters
// with different policies are converted to integer values and added up to
// compute a checksum").
func Checksum(t String) (Int, error) {
	acc := Int{}
	var err error
	for i := 0; i < t.Len(); i++ {
		c, ps := t.ByteAt(i)
		acc, err = acc.Add(Int{v: int64(c), ps: ps})
		if err != nil {
			return Int{}, err
		}
	}
	return acc, nil
}
