package core

import (
	"strings"
	"sync"
	"testing"
)

func TestContextBasics(t *testing.T) {
	ctx := NewContext(KindEmail)
	if ctx.Type() != KindEmail {
		t.Errorf("type = %q", ctx.Type())
	}
	ctx.Set("email", "u@foo.com")
	ctx.Set("count", 3)
	ctx.Set("flag", true)

	if v, ok := ctx.GetString("email"); !ok || v != "u@foo.com" {
		t.Errorf("GetString = %q %v", v, ok)
	}
	if _, ok := ctx.GetString("count"); ok {
		t.Error("GetString on non-string should be !ok")
	}
	if _, ok := ctx.GetString("missing"); ok {
		t.Error("GetString on missing should be !ok")
	}
	if !ctx.GetBool("flag") || ctx.GetBool("missing") || ctx.GetBool("email") {
		t.Error("GetBool wrong")
	}
	if v, ok := ctx.Get("count"); !ok || v.(int) != 3 {
		t.Error("Get wrong")
	}
	ctx.Delete("count")
	if _, ok := ctx.Get("count"); ok {
		t.Error("Delete failed")
	}
}

func TestContextCloneIndependent(t *testing.T) {
	ctx := NewContext(KindHTTP)
	ctx.Set("user", "alice")
	c2 := ctx.Clone()
	c2.Set("user", "bob")
	if u, _ := ctx.GetString("user"); u != "alice" {
		t.Error("clone mutated the original")
	}
	if u, _ := c2.GetString("user"); u != "bob" {
		t.Error("clone did not take the write")
	}
	if c2.Type() != KindHTTP {
		t.Error("clone lost the type")
	}
}

func TestContextString(t *testing.T) {
	ctx := NewContext(KindSQL)
	ctx.Set("user", "alice")
	s := ctx.String()
	if !strings.Contains(s, `type: sql`) || !strings.Contains(s, "user: alice") {
		t.Errorf("String() = %q", s)
	}
	// Keys are sorted for deterministic output.
	if strings.Index(s, "type") < strings.Index(s, "user") == false {
		t.Errorf("keys not sorted: %q", s)
	}
}

func TestContextConcurrentAccess(t *testing.T) {
	ctx := NewContext(KindHTTP)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ctx.Set("k", i)
				ctx.Get("k")
				ctx.GetString("type")
				_ = ctx.String()
			}
		}(i)
	}
	wg.Wait()
}

func TestPolicyNameVariants(t *testing.T) {
	if PolicyName(nil) != "<nil>" {
		t.Error("nil name")
	}
	if got := PolicyName(&allowPolicy{}); got != "allowPolicy" {
		t.Errorf("unregistered name = %q", got)
	}
	if got := PolicyName(&wirePasswordPolicy{}); got != "test.WirePasswordPolicy" {
		t.Errorf("registered name = %q", got)
	}
}

func TestAssertionErrorFormatting(t *testing.T) {
	inner := &denyPolicy{Reason: "nope"}
	ctx := NewContext(KindHTTP)
	ae := &AssertionError{Policy: inner, Context: ctx, Op: "export_check", Err: errString("nope")}
	msg := ae.Error()
	for _, want := range []string{"denyPolicy", "export_check", "http", "nope"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// Filter-originated assertion (no policy).
	ae2 := &AssertionError{Op: "read_check", Err: errString("bad")}
	if !strings.Contains(ae2.Error(), "filter object") || !strings.Contains(ae2.Error(), "internal") {
		t.Errorf("filter error = %q", ae2.Error())
	}
	if ae.Unwrap() == nil {
		t.Error("Unwrap should return the inner error")
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestIsAssertionErrorUnwrapsChains(t *testing.T) {
	ae := &AssertionError{Op: "merge", Err: errString("x")}
	wrapped := wrapErr{ae}
	if got, ok := IsAssertionError(wrapped); !ok || got != ae {
		t.Error("should unwrap one level")
	}
	if _, ok := IsAssertionError(errString("plain")); ok {
		t.Error("plain error is not an assertion error")
	}
	if _, ok := IsAssertionError(nil); ok {
		t.Error("nil is not an assertion error")
	}
}

type wrapErr struct{ inner error }

func (w wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w wrapErr) Unwrap() error { return w.inner }

func TestChannelConcurrentWrites(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := ch.WriteRaw("x"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(ch.RawOutput()); got != 800 {
		t.Errorf("output length = %d", got)
	}
}

func TestRuntimeViolationCounting(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	for i := 0; i < 3; i++ {
		ch.Write(NewStringPolicy("s", &denyPolicy{Reason: "no"}))
	}
	if rt.Violations() != 3 {
		t.Errorf("violations = %d", rt.Violations())
	}
	// Non-assertion errors are not counted.
	ch2 := rt.NewBareChannel(KindPipe)
	ch2.PushFilter(WriteFilterFunc(func(c *Channel, d String, off int64) (String, error) {
		return d, errString("io failure")
	}))
	ch2.WriteRaw("x")
	if rt.Violations() != 3 {
		t.Errorf("plain errors must not count as violations: %d", rt.Violations())
	}
}

func TestNilRuntimeTracking(t *testing.T) {
	var rt *Runtime
	if rt.Tracking() {
		t.Error("nil runtime tracks nothing")
	}
	ch := NewChannel(nil, KindPipe, ExportCheckFilter{})
	if err := ch.Write(NewStringPolicy("s", &denyPolicy{Reason: "no"})); err != nil {
		t.Error("nil-runtime channels skip filters")
	}
}

func TestChannelSinkErrorPropagates(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindFile)
	ch.SetSink(failingWriter{})
	if err := ch.WriteRaw("x"); err == nil {
		t.Error("sink failure should surface")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errString("disk full") }
