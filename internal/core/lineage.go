package core

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Lineage hook points. The flow monitor itself lives in internal/lineage
// (core must stay stdlib-only, see arch_test.go); it installs these hooks
// from its package init, and every instrumented site in core and in the
// boundary packages reports through them.
//
// The contract is zero cost while disabled: each instrumented hot path
// pays exactly one atomic load (lineageOn) and must not allocate, touch a
// map, or compute a node name before that check passes. Tests pin this
// with testing.AllocsPerRun over Concat and DecodeSpans.

// lineageGate is the package-level atomic gate. Off by default.
var lineageGate atomic.Bool

// lineageHooks holds the installed monitor callbacks. They are written
// only by SetLineageHooks — in practice once, from internal/lineage's
// package init, before any goroutines run — and read behind the gate.
var lineageHooks struct {
	// record reports that a value carrying set crossed node via op.
	record func(set *PolicySet, op, node string)
	// derive reports that child was derived from parent sets a and b
	// (either may be nil), so traces can follow policy-set unions.
	derive func(child, a, b *PolicySet)
}

// SetLineageHooks installs the flow monitor's callbacks. It must be
// called before the gate is ever enabled (package-init time); installing
// hooks while recording is live is a data race by contract.
func SetLineageHooks(record func(set *PolicySet, op, node string), derive func(child, a, b *PolicySet)) {
	lineageHooks.record = record
	lineageHooks.derive = derive
}

// SetLineageGate toggles lineage recording. Enabling without hooks
// installed is harmless: every report site checks for a nil hook.
func SetLineageGate(on bool) { lineageGate.Store(on) }

// LineageEnabled reports whether lineage recording is on. Boundary
// packages use it to skip node-name computation on their hot paths.
func LineageEnabled() bool { return lineageGate.Load() }

// lineageOn is the internal spelling of the gate check.
func lineageOn() bool { return lineageGate.Load() }

// LineageRecord reports a boundary crossing for one policy set. It is
// safe to call unconditionally: the gate check is the first thing it
// does, and empty sets are ignored (lineage is keyed on policy content,
// so untainted data has nothing to record under).
func LineageRecord(set *PolicySet, op, node string) {
	if !lineageGate.Load() {
		return
	}
	lineageRecordSet(set, op, node)
}

// lineageRecordSet is LineageRecord after the gate check.
func lineageRecordSet(set *PolicySet, op, node string) {
	if set.Len() == 0 {
		return
	}
	if rec := lineageHooks.record; rec != nil {
		rec(set, op, node)
	}
}

// LineageRecordValue reports a boundary crossing for every distinct
// policy set carried by v's spans (consecutive spans sharing a set
// report once). Safe to call unconditionally; gate-checked first.
func LineageRecordValue(v String, op, node string) {
	if !lineageGate.Load() || len(v.spans) == 0 {
		return
	}
	lineageRecordSpans(v, op, node)
}

// lineageRecordSpans reports each distinct span set of v. Caller has
// checked the gate and that v has spans.
func lineageRecordSpans(v String, op, node string) {
	rec := lineageHooks.record
	if rec == nil {
		return
	}
	// Report each span set once per crossing. Adjacent spans sharing a
	// set are already coalesced by the Builder; interleaved repeats
	// ([a][b][a]) are deduped against the whole prefix, which is cheap
	// because span lists are short.
	for i, sp := range v.spans {
		if sp.ps.Len() == 0 {
			continue
		}
		dup := false
		for _, prev := range v.spans[:i] {
			if prev.ps == sp.ps {
				dup = true
				break
			}
		}
		if !dup {
			rec(sp.ps, op, node)
		}
	}
}

// lineageFilterNode names a filter crossing for lineage, e.g.
// "filter:ExportCheckFilter(http)". Only called with the gate on, so
// the fmt cost never lands on the disabled path.
func lineageFilterNode(f Filter, ctx *Context) string {
	name := fmt.Sprintf("%T", f)
	name = strings.TrimPrefix(name, "*")
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return "filter:" + name + "(" + ctx.Type() + ")"
}

// lineageRecordArgs reports a function-call filter crossing for every
// tracked-string argument. Caller has checked the gate.
func lineageRecordArgs(args []any, op, node string) {
	for _, a := range args {
		if s, ok := a.(String); ok && len(s.spans) > 0 {
			lineageRecordSpans(s, op, node)
		}
	}
}

// lineageDerive reports that child was derived from parents a and/or b,
// if it is a genuinely new set. Called from the PolicySet constructors'
// union/merge paths.
func lineageDerive(child, a, b *PolicySet) {
	if !lineageGate.Load() {
		return
	}
	der := lineageHooks.derive
	if der == nil || child.Len() == 0 {
		return
	}
	if child == a || child == b {
		return
	}
	der(child, a, b)
}
