// Package core implements the RESIN data-flow assertion runtime: policy
// objects, character-level data tracking, and filter objects at data-flow
// boundaries (Yip et al., SOSP 2009).
//
// Programmers annotate sensitive data with policy objects (Policy). The
// runtime propagates those policies as the data is copied, concatenated,
// sliced and reassembled (String, Int). When data crosses a data-flow
// boundary (Channel), filter objects (WriteFilter, ReadFilter, FuncFilter)
// run; the default filter invokes each policy's ExportCheck, which vetoes
// the flow by returning an error — the Go analogue of the paper's thrown
// exception.
package core

import (
	"fmt"
	"reflect"
)

// Policy is a policy object (§3.3 of the paper). A policy object is
// attached to data and travels with it; filter objects consult it when the
// data crosses a data-flow boundary.
//
// Policy objects should be pointers to structs so that identity is
// well-defined and so that the serialization machinery (RegisterPolicyClass)
// can round-trip their exported fields.
type Policy interface {
	// ExportCheck checks whether the data-flow assertion allows exporting
	// the tagged data through the boundary described by ctx. A non-nil
	// error vetoes the flow; the runtime wraps it in *AssertionError and
	// aborts the write.
	ExportCheck(ctx *Context) error
}

// Merger is an optional extension of Policy for custom merge semantics
// (§3.4.2). When two data elements with policies are merged by an operation
// that cannot preserve character-level tracking (integer addition,
// checksums, hashing), the runtime calls Merge on each policy of each
// operand, passing the entire policy set of the other operand. Merge
// returns the set of policies (typically zero or one) that should apply to
// the merged result, or an error if the merge must be refused outright.
//
// A policy that does not implement Merger gets the default union strategy:
// it propagates itself onto the result.
type Merger interface {
	Policy
	Merge(other *PolicySet) ([]Policy, error)
}

// ReadChecker is an optional extension of Policy consulted by input-side
// default filters. It is the mirror image of ExportCheck for data entering
// the runtime — for example, the interpreter's code-import channel asks
// each policy whether the data may be used as code.
type ReadChecker interface {
	Policy
	ReadCheck(ctx *Context) error
}

// samePolicy reports whether two policy objects are the same object.
// Pointer policies compare by identity; comparable value policies compare
// by ==; uncomparable value policies are never the same object.
func samePolicy(a, b Policy) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ra := reflect.ValueOf(a)
	rb := reflect.ValueOf(b)
	if ra.Type() != rb.Type() {
		return false
	}
	if ra.Kind() == reflect.Pointer {
		return ra.Pointer() == rb.Pointer()
	}
	if !ra.Type().Comparable() {
		return false
	}
	return a == b
}

// PolicyName returns a human-readable name for a policy object: its
// registered class name if it has one, otherwise its Go type name.
func PolicyName(p Policy) string {
	if p == nil {
		return "<nil>"
	}
	if name, ok := RegisteredPolicyName(p); ok {
		return name
	}
	t := reflect.TypeOf(p)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// AssertionError is returned (wrapped) when a data-flow assertion fails: a
// policy's ExportCheck, ReadCheck or Merge vetoed a flow. It is the Go
// analogue of the exception thrown by export_check in the paper.
type AssertionError struct {
	// Policy is the policy object that vetoed the flow.
	Policy Policy
	// Context describes the boundary at which the flow was vetoed; nil for
	// merge failures, which happen inside the runtime rather than at a
	// boundary.
	Context *Context
	// Op names the runtime operation that detected the violation
	// ("export_check", "read_check", "merge").
	Op string
	// Err is the error returned by the policy.
	Err error
}

func (e *AssertionError) Error() string {
	where := "internal"
	if e.Context != nil {
		where = e.Context.Type()
	}
	by := "filter object"
	if e.Policy != nil {
		by = "policy " + PolicyName(e.Policy)
	}
	return fmt.Sprintf("resin: data flow assertion failed: %s vetoed %s at %s boundary: %v",
		by, e.Op, where, e.Err)
}

func (e *AssertionError) Unwrap() error { return e.Err }

// IsAssertionError reports whether err is or wraps an *AssertionError, and
// returns it if so.
func IsAssertionError(err error) (*AssertionError, bool) {
	for err != nil {
		if ae, ok := err.(*AssertionError); ok {
			return ae, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}
