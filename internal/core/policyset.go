package core

import "strings"

// PolicySet is an immutable set of policy objects. A datum's policy set
// holds every policy attached to it (§3.4: "a single datum may have
// multiple policy objects, all contained in the datum's policy set").
//
// The zero value and the nil pointer are both the empty set. All methods
// are safe on a nil receiver, and all mutating operations return a new set,
// so PolicySets may be freely shared between spans and strings.
//
// Construction computes a canonical identity — sorted member IDs plus a
// hash — for sets of pointer policies (see intern.go), which decides
// Equal and accelerates Union and subset tests without reflection or
// member-wise scans. Sets with proven reuse can additionally be
// canonicalized into a process-wide table with Intern, after which
// equality is a pointer comparison and unions are memoized. Sets
// holding non-pointer policy objects fall back to member-wise
// comparisons; all methods handle every form.
type PolicySet struct {
	policies []Policy
	// ids holds the members' canonical IDs, sorted ascending; valid
	// only when idsOK. It backs O(log n) membership, O(n) equality and
	// subset tests over plain integers.
	ids []uint64
	// hash is the canonical FNV-1a hash of ids; valid only when idsOK.
	hash uint64
	// idsOK marks ids/hash as computed (every member is a pointer
	// policy with a well-defined address identity).
	idsOK bool
	// interned marks an instance that was registered in the intern
	// table (possibly in a since-flushed generation); such sets are
	// eligible for the memoized-union cache, and within one table
	// generation equal members yield the same instance.
	interned bool
	// mergers caches whether any member implements Merger, so
	// MergePolicies can short-circuit to a pure union.
	mergers bool
}

// EmptySet is the canonical empty policy set.
var EmptySet = &PolicySet{interned: true}

// newPolicySet builds a set from an already-deduplicated member list,
// computing its canonical identity. It takes ownership of policies.
func newPolicySet(policies []Policy) *PolicySet {
	if len(policies) == 0 {
		return EmptySet
	}
	s := &PolicySet{policies: policies, mergers: anyMerger(policies)}
	s.ids, s.hash, s.idsOK = computePolicyIDs(policies)
	return s
}

// NewPolicySet builds a set from the given policies, dropping nils and
// duplicates (by object identity).
func NewPolicySet(ps ...Policy) *PolicySet {
	if len(ps) == 0 {
		return EmptySet
	}
	out := make([]Policy, 0, len(ps))
	for _, p := range ps {
		if p == nil {
			continue
		}
		out = appendUniquePolicy(out, p)
	}
	return newPolicySet(out)
}

// appendUniquePolicy appends p to dst unless an identical policy (per
// samePolicy) is already present.
func appendUniquePolicy(dst []Policy, p Policy) []Policy {
	for _, q := range dst {
		if samePolicy(p, q) {
			return dst
		}
	}
	return append(dst, p)
}

// Len returns the number of policies in the set.
func (s *PolicySet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.policies)
}

// IsEmpty reports whether the set has no policies.
func (s *PolicySet) IsEmpty() bool { return s.Len() == 0 }

// Interned reports whether s is a canonical interned instance.
func (s *PolicySet) Interned() bool { return s != nil && s.interned }

// Policies returns the policies in the set as a fresh slice that the caller
// may modify.
func (s *PolicySet) Policies() []Policy {
	if s.Len() == 0 {
		return nil
	}
	out := make([]Policy, len(s.policies))
	copy(out, s.policies)
	return out
}

// Each calls fn for every policy in the set, stopping early if fn returns
// a non-nil error, which is returned.
func (s *PolicySet) Each(fn func(Policy) error) error {
	if s == nil {
		return nil
	}
	for _, p := range s.policies {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// Contains reports whether the set contains exactly the policy object p.
func (s *PolicySet) Contains(p Policy) bool {
	if s.Len() == 0 {
		return false
	}
	if s.idsOK {
		if id, ok := policyIdentity(p); ok {
			return containsPolicyID(s.ids, id)
		}
		// p is not a pointer policy, but every member is: only a
		// comparable-value member could match, and there are none.
		return false
	}
	for _, q := range s.policies {
		if samePolicy(p, q) {
			return true
		}
	}
	return false
}

// Any reports whether any policy in the set satisfies pred.
func (s *PolicySet) Any(pred func(Policy) bool) bool {
	if s == nil {
		return false
	}
	for _, p := range s.policies {
		if pred(p) {
			return true
		}
	}
	return false
}

// All reports whether every policy in the set satisfies pred. The empty
// set vacuously satisfies All.
func (s *PolicySet) All(pred func(Policy) bool) bool {
	if s == nil {
		return true
	}
	for _, p := range s.policies {
		if !pred(p) {
			return false
		}
	}
	return true
}

// Add returns a set that also contains p. If p is nil or already present
// the receiver is returned unchanged.
func (s *PolicySet) Add(p Policy) *PolicySet {
	if p == nil || s.Contains(p) {
		if s == nil {
			return EmptySet
		}
		return s
	}
	out := make([]Policy, 0, s.Len()+1)
	if s != nil {
		out = append(out, s.policies...)
	}
	out = append(out, p)
	u := newPolicySet(out)
	lineageDerive(u, s, nil)
	return u
}

// Remove returns a set without the policy object p (matched by identity).
func (s *PolicySet) Remove(p Policy) *PolicySet {
	if !s.Contains(p) {
		if s == nil {
			return EmptySet
		}
		return s
	}
	out := make([]Policy, 0, s.Len()-1)
	for _, q := range s.policies {
		if !samePolicy(p, q) {
			out = append(out, q)
		}
	}
	return newPolicySet(out)
}

// RemoveIf returns a set without the policies satisfying pred.
func (s *PolicySet) RemoveIf(pred func(Policy) bool) *PolicySet {
	if s.Len() == 0 {
		return EmptySet
	}
	out := make([]Policy, 0, s.Len())
	for _, q := range s.policies {
		if !pred(q) {
			out = append(out, q)
		}
	}
	if len(out) == len(s.policies) {
		return s
	}
	return newPolicySet(out)
}

// Union returns the set union of s and t (by object identity). Subset
// cases resolve by ID comparison without allocating; unions of interned
// operands are additionally memoized, and their results interned, so a
// workload whose base sets are interned pays one cache lookup per
// repeated union.
func (s *PolicySet) Union(t *PolicySet) *PolicySet {
	if t.Len() == 0 {
		if s == nil {
			return EmptySet
		}
		return s
	}
	if s.Len() == 0 || s == t {
		return t
	}
	bothIDs := s.idsOK && t.idsOK
	if bothIDs {
		if subsetPolicyIDs(t.ids, s.ids) {
			return s
		}
		if subsetPolicyIDs(s.ids, t.ids) {
			return t
		}
	}
	bothInterned := s.interned && t.interned
	if bothInterned {
		if u, ok := cachedUnion(s, t); ok {
			lineageDerive(u, s, t)
			return u
		}
	}
	out := make([]Policy, 0, len(s.policies)+len(t.policies))
	out = append(out, s.policies...)
	added := false
	for _, p := range t.policies {
		if !s.Contains(p) {
			out = append(out, p)
			added = true
		}
	}
	var u *PolicySet
	if !added {
		u = s
	} else {
		u = newPolicySet(out)
		if bothInterned {
			u = u.Intern()
		}
		lineageDerive(u, s, t)
	}
	if bothInterned {
		storeUnion(s, t, u)
	}
	return u
}

// Equal reports whether s and t contain the same policy objects,
// disregarding order. Identical instances (the common case for
// interned and span-shared sets) compare by pointer; sets with
// canonical IDs compare hashes and ID lists; only sets of non-pointer
// policies fall back to member-wise comparison.
func (s *PolicySet) Equal(t *PolicySet) bool {
	if s == t {
		return true
	}
	if s.Len() != t.Len() {
		return false
	}
	if s == nil || t == nil {
		return true // both empty
	}
	if s.idsOK && t.idsOK {
		// Both sets are live, so ID equality is exactly member
		// identity (see the soundness note in intern.go).
		return s.hash == t.hash && equalPolicyIDs(s.ids, t.ids)
	}
	for _, p := range s.policies {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// String renders the set for diagnostics, e.g. "{PasswordPolicy, UntrustedData}".
func (s *PolicySet) String() string {
	if s.Len() == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.policies {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(PolicyName(p))
	}
	b.WriteByte('}')
	return b.String()
}

// hasMerger reports whether any member implements Merger.
func (s *PolicySet) hasMerger() bool { return s != nil && s.mergers }

// MergePolicies implements the merge machinery of §3.4.2. When two data
// elements are merged by an operation that cannot preserve character-level
// tracking, the runtime invokes the merge method on each policy of each
// source operand, passing in the entire policy set of the other operand.
// The result is labelled with the union of all policies returned by all
// merge methods; a policy with no Merge method contributes itself (the
// default union strategy). Any Merge error aborts the operation.
//
// When neither operand carries a custom Merger, the result is exactly
// the union, so the Union fast paths (subset IDs, memoized interned
// pairs) apply.
func MergePolicies(a, b *PolicySet) (*PolicySet, error) {
	if a.Len() == 0 && b.Len() == 0 {
		return EmptySet, nil
	}
	if !a.hasMerger() && !b.hasMerger() {
		return a.Union(b), nil
	}
	var out []Policy
	mergeSide := func(side, other *PolicySet) error {
		if side == nil {
			return nil
		}
		for _, p := range side.policies {
			if m, ok := p.(Merger); ok {
				rs, err := m.Merge(other)
				if err != nil {
					return &AssertionError{Policy: p, Op: "merge", Err: err}
				}
				for _, r := range rs {
					if r != nil {
						out = appendUniquePolicy(out, r)
					}
				}
			} else {
				out = appendUniquePolicy(out, p)
			}
		}
		return nil
	}
	if err := mergeSide(a, b); err != nil {
		return nil, err
	}
	if err := mergeSide(b, a); err != nil {
		return nil, err
	}
	merged := newPolicySet(out)
	lineageDerive(merged, a, b)
	return merged, nil
}
