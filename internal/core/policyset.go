package core

import "strings"

// PolicySet is an immutable set of policy objects. A datum's policy set
// holds every policy attached to it (§3.4: "a single datum may have
// multiple policy objects, all contained in the datum's policy set").
//
// The zero value and the nil pointer are both the empty set. All methods
// are safe on a nil receiver, and all mutating operations return a new set,
// so PolicySets may be freely shared between spans and strings.
type PolicySet struct {
	policies []Policy
}

// EmptySet is the canonical empty policy set.
var EmptySet = &PolicySet{}

// NewPolicySet builds a set from the given policies, dropping nils and
// duplicates (by object identity).
func NewPolicySet(ps ...Policy) *PolicySet {
	if len(ps) == 0 {
		return EmptySet
	}
	out := make([]Policy, 0, len(ps))
	for _, p := range ps {
		if p == nil {
			continue
		}
		dup := false
		for _, q := range out {
			if samePolicy(p, q) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return EmptySet
	}
	return &PolicySet{policies: out}
}

// Len returns the number of policies in the set.
func (s *PolicySet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.policies)
}

// IsEmpty reports whether the set has no policies.
func (s *PolicySet) IsEmpty() bool { return s.Len() == 0 }

// Policies returns the policies in the set as a fresh slice that the caller
// may modify.
func (s *PolicySet) Policies() []Policy {
	if s.Len() == 0 {
		return nil
	}
	out := make([]Policy, len(s.policies))
	copy(out, s.policies)
	return out
}

// Each calls fn for every policy in the set, stopping early if fn returns
// a non-nil error, which is returned.
func (s *PolicySet) Each(fn func(Policy) error) error {
	if s == nil {
		return nil
	}
	for _, p := range s.policies {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// Contains reports whether the set contains exactly the policy object p.
func (s *PolicySet) Contains(p Policy) bool {
	if s == nil {
		return false
	}
	for _, q := range s.policies {
		if samePolicy(p, q) {
			return true
		}
	}
	return false
}

// Any reports whether any policy in the set satisfies pred.
func (s *PolicySet) Any(pred func(Policy) bool) bool {
	if s == nil {
		return false
	}
	for _, p := range s.policies {
		if pred(p) {
			return true
		}
	}
	return false
}

// All reports whether every policy in the set satisfies pred. The empty
// set vacuously satisfies All.
func (s *PolicySet) All(pred func(Policy) bool) bool {
	if s == nil {
		return true
	}
	for _, p := range s.policies {
		if !pred(p) {
			return false
		}
	}
	return true
}

// Add returns a set that also contains p. If p is nil or already present
// the receiver is returned unchanged.
func (s *PolicySet) Add(p Policy) *PolicySet {
	if p == nil || s.Contains(p) {
		if s == nil {
			return EmptySet
		}
		return s
	}
	out := make([]Policy, 0, s.Len()+1)
	if s != nil {
		out = append(out, s.policies...)
	}
	out = append(out, p)
	return &PolicySet{policies: out}
}

// Remove returns a set without the policy object p (matched by identity).
func (s *PolicySet) Remove(p Policy) *PolicySet {
	if !s.Contains(p) {
		if s == nil {
			return EmptySet
		}
		return s
	}
	out := make([]Policy, 0, s.Len()-1)
	for _, q := range s.policies {
		if !samePolicy(p, q) {
			out = append(out, q)
		}
	}
	if len(out) == 0 {
		return EmptySet
	}
	return &PolicySet{policies: out}
}

// RemoveIf returns a set without the policies satisfying pred.
func (s *PolicySet) RemoveIf(pred func(Policy) bool) *PolicySet {
	if s.Len() == 0 {
		return EmptySet
	}
	out := make([]Policy, 0, s.Len())
	for _, q := range s.policies {
		if !pred(q) {
			out = append(out, q)
		}
	}
	if len(out) == len(s.policies) {
		return s
	}
	if len(out) == 0 {
		return EmptySet
	}
	return &PolicySet{policies: out}
}

// Union returns the set union of s and t (by object identity).
func (s *PolicySet) Union(t *PolicySet) *PolicySet {
	if t.Len() == 0 {
		if s == nil {
			return EmptySet
		}
		return s
	}
	if s.Len() == 0 {
		return t
	}
	out := s
	for _, p := range t.policies {
		out = out.Add(p)
	}
	return out
}

// Equal reports whether s and t contain the same policy objects,
// disregarding order.
func (s *PolicySet) Equal(t *PolicySet) bool {
	if s.Len() != t.Len() {
		return false
	}
	if s == nil || t == nil {
		return true // both empty
	}
	for _, p := range s.policies {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// String renders the set for diagnostics, e.g. "{PasswordPolicy, UntrustedData}".
func (s *PolicySet) String() string {
	if s.Len() == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.policies {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(PolicyName(p))
	}
	b.WriteByte('}')
	return b.String()
}

// MergePolicies implements the merge machinery of §3.4.2. When two data
// elements are merged by an operation that cannot preserve character-level
// tracking, the runtime invokes the merge method on each policy of each
// source operand, passing in the entire policy set of the other operand.
// The result is labelled with the union of all policies returned by all
// merge methods; a policy with no Merge method contributes itself (the
// default union strategy). Any Merge error aborts the operation.
func MergePolicies(a, b *PolicySet) (*PolicySet, error) {
	if a.Len() == 0 && b.Len() == 0 {
		return EmptySet, nil
	}
	out := EmptySet
	mergeSide := func(side, other *PolicySet) error {
		if side == nil {
			return nil
		}
		for _, p := range side.policies {
			if m, ok := p.(Merger); ok {
				rs, err := m.Merge(other)
				if err != nil {
					return &AssertionError{Policy: p, Op: "merge", Err: err}
				}
				for _, r := range rs {
					out = out.Add(r)
				}
			} else {
				out = out.Add(p)
			}
		}
		return nil
	}
	if err := mergeSide(a, b); err != nil {
		return nil, err
	}
	if err := mergeSide(b, a); err != nil {
		return nil, err
	}
	return out, nil
}
