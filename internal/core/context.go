package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Context is the context hash table attached to a filter object's channel
// (§3.2.1). It describes the specific I/O channel or function call that
// the filter guards — for example, the email channel's context carries the
// recipient address and the HTTP channel's context carries the
// authenticated user. Default filters pass the context as the argument to
// each policy's ExportCheck.
//
// The well-known key "type" identifies the boundary kind ("email", "http",
// "file", "sql", "socket", "pipe", "code"); applications add their own
// key-value pairs ("RESIN also allows the application to add its own
// key-value pairs to the context hash table of default filter objects").
//
// Context is safe for concurrent use.
type Context struct {
	mu     sync.RWMutex
	values map[string]any
}

// Boundary kinds used by the default filter objects that RESIN pre-defines
// "on all I/O channels into and out of the runtime" (§3.2.1).
const (
	KindSocket = "socket"
	KindPipe   = "pipe"
	KindFile   = "file"
	KindHTTP   = "http"
	KindEmail  = "email"
	KindSQL    = "sql"
	KindCode   = "code"
)

// NewContext builds a context for a boundary of the given kind.
func NewContext(kind string) *Context {
	return &Context{values: map[string]any{"type": kind}}
}

// Type returns the boundary kind (the "type" key), or "" if unset.
func (c *Context) Type() string {
	s, _ := c.GetString("type")
	return s
}

// Set adds or replaces a context key.
func (c *Context) Set(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.values == nil {
		c.values = make(map[string]any)
	}
	c.values[key] = value
}

// Get returns the value for key and whether it is present.
func (c *Context) Get(key string) (any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.values[key]
	return v, ok
}

// GetString returns the value for key as a string; ok is false if the key
// is absent or not a string.
func (c *Context) GetString(key string) (string, bool) {
	v, ok := c.Get(key)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// GetBool returns the value for key as a bool (false if absent or not a bool).
func (c *Context) GetBool(key string) bool {
	v, ok := c.Get(key)
	if !ok {
		return false
	}
	b, _ := v.(bool)
	return b
}

// Delete removes a key from the context.
func (c *Context) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.values, key)
}

// Clone returns an independent copy of the context.
func (c *Context) Clone() *Context {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]any, len(c.values))
	for k, v := range c.values {
		out[k] = v
	}
	return &Context{values: out}
}

// String renders the context for diagnostics with keys sorted, e.g.
// `{email: "u@foo.com", type: "email"}`.
func (c *Context) String() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.values))
	for k := range c.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %v", k, c.values[k])
	}
	b.WriteByte('}')
	return b.String()
}
