package core

import (
	"errors"
	"strings"
	"testing"
)

func TestChannelDefaultFilterAllows(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	data := NewStringPolicy("hello", &allowPolicy{Name: "ok"})
	if err := ch.Write(data); err != nil {
		t.Fatalf("allowing policy should pass: %v", err)
	}
	if ch.RawOutput() != "hello" {
		t.Errorf("output = %q", ch.RawOutput())
	}
}

func TestChannelDefaultFilterVetoes(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	data := NewStringPolicy("secret", &denyPolicy{Reason: "unauthorized disclosure"})
	err := ch.Write(data)
	if err == nil {
		t.Fatal("deny policy should veto the write")
	}
	ae, ok := IsAssertionError(err)
	if !ok {
		t.Fatalf("want AssertionError, got %T: %v", err, err)
	}
	if ae.Op != "export_check" || ae.Context.Type() != KindHTTP {
		t.Errorf("ae = %+v", ae)
	}
	if ch.RawOutput() != "" {
		t.Errorf("vetoed write must not emit output, got %q", ch.RawOutput())
	}
	if rt.Violations() != 1 {
		t.Errorf("violations = %d", rt.Violations())
	}
}

func TestChannelUntaintedDataPassesDefaultFilter(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindSocket)
	if err := ch.Write(NewString("plain")); err != nil {
		t.Fatalf("untainted data should always pass the default filter: %v", err)
	}
}

func TestChannelTrackingDisabledSkipsFilters(t *testing.T) {
	rt := NewUntrackedRuntime()
	ch := rt.NewChannel(KindHTTP)
	data := NewString("secret").WithPolicy(&denyPolicy{Reason: "no"})
	if err := ch.Write(data); err != nil {
		t.Fatalf("untracked runtime must skip filters: %v", err)
	}
	if ch.RawOutput() != "secret" {
		t.Errorf("output = %q", ch.RawOutput())
	}
}

func TestChannelContextVisibleToPolicies(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindEmail)
	ch.Context().Set("email", "u@foo.com")

	p := &contextCheckPolicy{WantKey: "email", WantVal: "u@foo.com"}
	if err := ch.Write(NewStringPolicy("pw", p)); err != nil {
		t.Fatalf("policy should see channel context: %v", err)
	}
	ch2 := rt.NewChannel(KindEmail)
	ch2.Context().Set("email", "attacker@evil.com")
	if err := ch2.Write(NewStringPolicy("pw", p)); err == nil {
		t.Fatal("policy should veto mismatched context")
	}
}

type contextCheckPolicy struct {
	WantKey, WantVal string
}

func (p *contextCheckPolicy) ExportCheck(ctx *Context) error {
	if v, _ := ctx.GetString(p.WantKey); v != p.WantVal {
		return errors.New("context mismatch")
	}
	return nil
}

func TestChannelFilterOrderAndRewrite(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewBareChannel(KindPipe)
	var order []string
	ch.PushFilter(WriteFilterFunc(func(c *Channel, d String, off int64) (String, error) {
		order = append(order, "first")
		return Concat(d, NewString("-1")), nil
	}))
	ch.PushFilter(WriteFilterFunc(func(c *Channel, d String, off int64) (String, error) {
		order = append(order, "second")
		return Concat(d, NewString("-2")), nil
	}))
	if err := ch.Write(NewString("x")); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "first,second" {
		t.Errorf("filter order = %v", order)
	}
	if ch.RawOutput() != "x-1-2" {
		t.Errorf("rewrite chain output = %q", ch.RawOutput())
	}
}

func TestChannelReadFiltersTaint(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewBareChannel(KindSocket)
	p := &allowPolicy{Name: "untrusted"}
	ch.PushFilter(&TaintReadFilter{Policies: []Policy{p}})
	got, err := ch.Read(NewString("input"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasPolicyEverywhere(func(q Policy) bool { return q == p }) {
		t.Error("read filter should taint all incoming bytes")
	}
}

func TestReadCheckFilter(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewBareChannel(KindCode)
	ch.PushFilter(ReadCheckFilter{})
	deny := &readDenyPolicy{}
	if _, err := ch.Read(NewStringPolicy("code", deny)); err == nil {
		t.Fatal("ReadChecker veto should propagate")
	}
	if _, err := ch.Read(NewStringPolicy("code", &allowPolicy{Name: "x"})); err != nil {
		t.Fatalf("non-ReadChecker policies are ignored on read: %v", err)
	}
}

type readDenyPolicy struct{}

func (p *readDenyPolicy) ExportCheck(ctx *Context) error { return nil }
func (p *readDenyPolicy) ReadCheck(ctx *Context) error   { return errors.New("not executable") }

func TestStripPolicyFilter(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewBareChannel(KindPipe)
	ch.PushFilter(&StripPolicyFilter{Pred: func(p Policy) bool {
		_, ok := p.(*denyPolicy)
		return ok
	}})
	ch.PushFilter(ExportCheckFilter{})
	// The deny policy is stripped before the export check: models an
	// encryption boundary stripping confidentiality policies.
	data := NewStringPolicy("ciphertext", &denyPolicy{Reason: "no"})
	if err := ch.Write(data); err != nil {
		t.Fatalf("stripped policy should not veto: %v", err)
	}
	if ch.Output().IsTainted() {
		t.Error("policy should be gone from emitted data")
	}
}

func TestRejectSequenceFilterHTTPSplitting(t *testing.T) {
	taint := &allowPolicy{Name: "user-input"}
	isTaint := func(p Policy) bool { return p == taint }
	rt := NewRuntime()
	ch := rt.NewBareChannel(KindHTTP)
	ch.PushFilter(&RejectSequenceFilter{
		Sequence: "\r\n\r\n", TaintedOnly: true, IsTainted: isTaint,
	})
	// CRLFCRLF from the application itself: allowed.
	if err := ch.Write(NewString("Header: a\r\n\r\nbody")); err != nil {
		t.Fatalf("untainted delimiter should pass: %v", err)
	}
	// CRLFCRLF injected via user input: rejected.
	evil := Concat(NewString("Location: "), NewStringPolicy("x\r\n\r\n<script>", taint))
	if err := ch.Write(evil); err == nil {
		t.Fatal("tainted delimiter must be rejected")
	}
	// TaintedOnly=false rejects regardless of provenance.
	ch2 := rt.NewBareChannel(KindHTTP)
	ch2.PushFilter(&RejectSequenceFilter{Sequence: "\r\n\r\n"})
	if err := ch2.Write(NewString("a\r\n\r\nb")); err == nil {
		t.Fatal("unconditional filter must reject")
	}
}

func TestOutputBufferingReleaseAndDiscard(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	ch.WriteRaw("head|")
	ch.BeginBuffer()
	ch.WriteRaw("author list")
	if err := ch.DiscardBuffer(); err != nil {
		t.Fatal(err)
	}
	ch.WriteRaw("Anonymous|")
	ch.BeginBuffer()
	ch.WriteRaw("abstract")
	if err := ch.ReleaseBuffer(); err != nil {
		t.Fatal(err)
	}
	if got := ch.RawOutput(); got != "head|Anonymous|abstract" {
		t.Errorf("output = %q", got)
	}
}

func TestOutputBufferingNested(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	ch.BeginBuffer()
	ch.WriteRaw("outer-")
	ch.BeginBuffer()
	ch.WriteRaw("inner")
	if ch.BufferDepth() != 2 {
		t.Errorf("depth = %d", ch.BufferDepth())
	}
	if err := ch.ReleaseBuffer(); err != nil { // inner → outer
		t.Fatal(err)
	}
	if err := ch.ReleaseBuffer(); err != nil { // outer → out
		t.Fatal(err)
	}
	if got := ch.RawOutput(); got != "outer-inner" {
		t.Errorf("output = %q", got)
	}
	if err := ch.ReleaseBuffer(); err != ErrNoBuffer {
		t.Errorf("release with no buffer: %v", err)
	}
	if err := ch.DiscardBuffer(); err != ErrNoBuffer {
		t.Errorf("discard with no buffer: %v", err)
	}
}

func TestOutputBufferingAssertionStillFiresAtWrite(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	ch.BeginBuffer()
	err := ch.Write(NewStringPolicy("secret", &denyPolicy{Reason: "no"}))
	if err == nil {
		t.Fatal("assertion must fire at write time even inside a buffer")
	}
	ch.DiscardBuffer()
	ch.WriteRaw("Anonymous")
	if got := ch.RawOutput(); got != "Anonymous" {
		t.Errorf("output = %q", got)
	}
}

func TestChannelCallFuncFilters(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewBareChannel(KindSQL)
	ch.PushFilter(FuncFilterFunc(func(c *Channel, args []any) ([]any, error) {
		q := args[0].(String)
		if q.Contains("DROP") {
			return nil, errors.New("rejected")
		}
		return []any{Concat(q, NewString(" LIMIT 1"))}, nil
	}))
	out, err := ch.Call([]any{NewString("SELECT 1")})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].(String).Raw() != "SELECT 1 LIMIT 1" {
		t.Errorf("rewritten arg = %q", out[0].(String).Raw())
	}
	if _, err := ch.Call([]any{NewString("DROP TABLE x")}); err == nil {
		t.Fatal("func filter veto should propagate")
	}
}

func TestChannelSinkReceivesRawBytes(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindFile)
	var sb strings.Builder
	ch.SetSink(&sb)
	ch.WriteRaw("abc")
	ch.BeginBuffer()
	ch.WriteRaw("buffered")
	ch.ReleaseBuffer()
	if sb.String() != "abcbuffered" {
		t.Errorf("sink = %q", sb.String())
	}
}

func TestChannelResetOutput(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	ch.WriteRaw("x")
	ch.ResetOutput()
	if ch.RawOutput() != "" {
		t.Error("reset should clear output")
	}
}

func TestRuntimeChannelRegistry(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindCode)
	rt.RegisterChannel("interpreter", ch)
	if rt.Channel("interpreter") != ch {
		t.Error("registry lookup failed")
	}
	if rt.Channel("missing") != nil {
		t.Error("missing lookup should be nil")
	}
}

func TestRuntimePolicyAddRespectsTracking(t *testing.T) {
	rt := NewRuntime()
	p := &allowPolicy{Name: "p"}
	if !rt.PolicyAdd(NewString("x"), p).IsTainted() {
		t.Error("tracking on: PolicyAdd should attach")
	}
	if len(rt.PolicyGet(NewStringPolicy("x", p))) != 1 {
		t.Error("PolicyGet should return the policy")
	}
	rt.SetTracking(false)
	if rt.PolicyAdd(NewString("x"), p).IsTainted() {
		t.Error("tracking off: PolicyAdd should be a no-op")
	}
	if rt.PolicyAddRange(NewString("xyz"), 0, 2, p).IsTainted() {
		t.Error("tracking off: PolicyAddRange should be a no-op")
	}
	rt.SetTracking(true)
	s := rt.PolicyAddRange(NewString("xyz"), 0, 2, p)
	if !s.PoliciesAt(0).Contains(p) || s.PoliciesAt(2).Contains(p) {
		t.Error("PolicyAddRange range wrong")
	}
	s = rt.PolicyRemove(s, p)
	if s.IsTainted() {
		t.Error("PolicyRemove failed")
	}
}

func TestExportCheckFilterChecksEachPolicyOnce(t *testing.T) {
	rt := NewRuntime()
	ch := rt.NewChannel(KindHTTP)
	p := &countingPolicy{}
	// Policy appears in two discontiguous spans; must be checked once.
	s := NewString("abcdef").WithPolicyRange(0, 2, p).WithPolicyRange(4, 6, p)
	if err := ch.Write(s); err != nil {
		t.Fatal(err)
	}
	if p.calls != 1 {
		t.Errorf("export_check calls = %d, want 1", p.calls)
	}
}

type countingPolicy struct{ calls int }

func (p *countingPolicy) ExportCheck(ctx *Context) error {
	p.calls++
	return nil
}
