package core

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Policy-set interning and canonical hashing. Real workloads create the
// same handful of policy sets over and over: every byte of a password
// carries {PasswordPolicy}, every form field carries {UntrustedData},
// and every concatenation, slice, and SQL/HTTP boundary crossing
// compares or unions those same sets. The machinery here makes those
// repeated operations cheap in two tiers:
//
//  1. Every set of pointer policies gets a locally-computed canonical
//     identity — the sorted, type-salted addresses of its members plus
//     an FNV-1a hash over them — at construction. Equality between two
//     live sets is then decided entirely by comparing those IDs: no
//     reflection, no member-wise scans, no global state, and nothing
//     for the garbage collector to retain. One-shot sets (a fresh
//     policy attached to one request's form field) stay exactly as
//     collectable as they were.
//
//  2. Sets with proven reuse — deserialized annotations behind a decode
//     memo, long-lived application policy sets, anything the caller
//     passes to Intern — are canonicalized into a process-wide sharded
//     intern table. Among interned sets, equal members means identical
//     pointer, so Equal is a pointer comparison and Union of a
//     previously-seen pair is a hit in the memoized pairwise-union
//     cache. Unions of interned operands intern their results, so once
//     a workload's base sets are interned the whole derived lattice
//     rides the fast paths ("interned begets interned").
//
// This is the "heavy analysis once, cheap checks forever after" split:
// hashing and dedup run when a set is built; the tracking hot path pays
// pointer and integer comparisons.
//
// Identity soundness: an ID is the member's address XOR a per-dynamic-
// type salt. While the two sets being compared are live, their members
// are live, so two distinct objects cannot share an address — except
// zero-sized objects, which Go may co-allocate; those collide only
// within the same dynamic type, where samePolicy already treats
// same-address pointers as the same policy. Across types the salt
// separates them except for a 2^-64 XOR collision; transient ID
// comparisons accept that risk, while the intern table — whose
// conflation would persist — verifies candidates member-wise on its
// cold path. Value (non-pointer) policies have no address; a set
// containing one forgoes IDs and uses the member-wise slow paths,
// matching the package's guidance that policies be pointers to structs.
//
// The intern table and union cache pin their entries, so both are
// capped. The intern table evicts generationally: each shard keeps a
// young and an old generation, lookups hit either (an old-generation
// hit promotes the set back to young), inserts go young, and when the
// young generation fills to half the cap the old generation is dropped
// and the young one takes its place. A churn workload therefore sheds
// only the sets that went a full generation without a hit — the hot
// set keeps getting promoted and survives — where the previous
// wholesale flush-at-cap evicted the entire hot set every time the
// churn crossed the cap. Correctness never depends on the table —
// equality is decided by canonical IDs — so eviction is always safe.

const (
	// numInternShards is the shard count of the set intern table; a
	// power of two so the hash can select a shard with a mask.
	numInternShards = 64

	// maxInternedSets caps the set intern table across all shards.
	maxInternedSets = 1 << 16

	// maxUnionCacheEntries caps the memoized pairwise-union cache.
	maxUnionCacheEntries = 1 << 15
)

// typeSalts assigns each policy dynamic type a distinct multiplicative
// salt, separating the IDs of zero-sized objects of different types
// that share an address. Bounded by the number of policy types in the
// program.
var (
	typeSalts   sync.Map // reflect.Type → uint64
	typeSaltSeq atomic.Uint64

	// lastSalt caches the most recently used (type, salt) pair; most
	// workloads touch one or two policy types, so this turns the common
	// lookup into an atomic load plus a pointer comparison.
	lastSalt atomic.Pointer[typeSaltEntry]
)

type typeSaltEntry struct {
	t    reflect.Type
	salt uint64
}

func typeSalt(t reflect.Type) uint64 {
	if e := lastSalt.Load(); e != nil && e.t == t {
		return e.salt
	}
	v, ok := typeSalts.Load(t)
	if !ok {
		// Derive a well-mixed salt from a sequence number (splitmix64).
		z := typeSaltSeq.Add(1) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		v, _ = typeSalts.LoadOrStore(t, z)
		// Refresh the one-entry cache only on first sighting: a workload
		// whose sets mix several types would otherwise ping-pong the
		// shared cache line (an allocation plus a cross-core store per
		// member per set construction).
		lastSalt.Store(&typeSaltEntry{t: t, salt: v.(uint64)})
	}
	return v.(uint64)
}

// policyIdentity returns the canonical ID of a pointer policy, or
// ok=false for nil and non-pointer policies.
func policyIdentity(p Policy) (uint64, bool) {
	if p == nil {
		return 0, false
	}
	v := reflect.ValueOf(p)
	if v.Kind() != reflect.Pointer {
		return 0, false
	}
	return uint64(v.Pointer()) ^ typeSalt(v.Type()), true
}

// computePolicyIDs builds the sorted ID list and canonical hash for a
// deduplicated member list. ok=false if any member lacks an identity.
func computePolicyIDs(policies []Policy) (ids []uint64, hash uint64, ok bool) {
	if len(policies) == 0 {
		return nil, 0, false
	}
	ids = make([]uint64, len(policies))
	for i, p := range policies {
		id, idOK := policyIdentity(p)
		if !idOK {
			return nil, 0, false
		}
		ids[i] = id
	}
	sortPolicyIDs(ids)
	return ids, hashPolicyIDs(ids), true
}

// hashPolicyIDs computes the canonical FNV-1a hash of a sorted ID list.
func hashPolicyIDs(ids []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		for i := 0; i < 8; i++ {
			h ^= id & 0xff
			h *= prime64
			id >>= 8
		}
	}
	return h
}

// sortPolicyIDs sorts a tiny ID slice in place (insertion sort — sets
// rarely exceed a handful of members).
func sortPolicyIDs(ids []uint64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func equalPolicyIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// containsPolicyID reports whether sorted ids contains id.
func containsPolicyID(ids []uint64, id uint64) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// subsetPolicyIDs reports whether every element of sorted sub occurs in
// sorted super (linear merge walk).
func subsetPolicyIDs(sub, super []uint64) bool {
	if len(sub) > len(super) {
		return false
	}
	j := 0
	for _, id := range sub {
		for j < len(super) && super[j] < id {
			j++
		}
		if j >= len(super) || super[j] != id {
			return false
		}
		j++
	}
	return true
}

// samePolicies reports whether two deduplicated member lists contain
// the same policy objects (per samePolicy), disregarding order. Used
// on cold paths where ID equality alone must not be trusted.
func samePolicies(a, b []Policy) bool {
	if len(a) != len(b) {
		return false
	}
	for _, p := range a {
		found := false
		for _, q := range b {
			if samePolicy(p, q) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// anyMerger reports whether any policy implements the Merger extension;
// cached per set so MergePolicies can take the pure-union fast path.
func anyMerger(policies []Policy) bool {
	for _, p := range policies {
		if _, ok := p.(Merger); ok {
			return true
		}
	}
	return false
}

// internShard is one bucket group of the set intern table. Buckets are
// keyed by the canonical hash; collisions chain in a small slice. Each
// shard keeps two generations: g0 receives inserts and promotions, g1
// is the previous g0 awaiting its drop at the next rotation.
type internShard struct {
	mu sync.Mutex
	g0 map[uint64][]*PolicySet
	g1 map[uint64][]*PolicySet
}

var (
	internTable [numInternShards]internShard
	// internedG0Count / internedG1Count track the generations across
	// all shards; their sum is the table's size, bounded by
	// maxInternedSets because each generation is bounded by half of it.
	internedG0Count atomic.Uint64
	internedG1Count atomic.Uint64
	flushMu         sync.Mutex

	// Interning counters (observability for tests and benchmarks).
	statSetHits     atomic.Uint64
	statSetMisses   atomic.Uint64
	statPromotions  atomic.Uint64
	statUnionHits   atomic.Uint64
	statUnionMisses atomic.Uint64
	statFlushes     atomic.Uint64
)

// rotateInternTable ages the intern table when the young generation
// reaches half the cap: every shard drops its old generation and the
// young one becomes old. Sets referenced since the last rotation were
// promoted into g0 and survive; only sets that went a full generation
// without a hit fall out, so a workload that churns distinct sets
// (fresh policies per decode, attacker-chosen parameter names) sheds
// the churn while the hot set stays warm. Already-evicted sets stay
// valid — equality never depends on the table, only on canonical IDs —
// they merely stop deduplicating against it. The union cache is left
// alone: its entries are keyed by canonical instances whose identity
// rotation does not disturb (it has its own cap and flush).
func rotateInternTable() {
	flushMu.Lock()
	defer flushMu.Unlock()
	if internedG0Count.Load() < maxInternedSets/2 {
		return // another goroutine rotated first
	}
	// Swap the counter before the maps: an insert racing the shard walk
	// can mis-attribute its increment by one generation, which skews
	// pacing by at most a few entries and corrects at the next rotation.
	internedG1Count.Store(internedG0Count.Swap(0))
	for i := range internTable {
		sh := &internTable[i]
		sh.mu.Lock()
		sh.g1 = sh.g0
		sh.g0 = nil
		sh.mu.Unlock()
	}
	statFlushes.Add(1)
}

// Intern canonicalizes s into the process-wide intern table and returns
// the canonical instance: the first set with these members that was
// interned. Interning is worthwhile for sets that will be compared or
// unioned repeatedly — long-lived application policy sets, memoized
// deserialized annotations — and is a no-op for sets that cannot carry
// canonical IDs. The table evicts generationally (see
// rotateInternTable): a hit in the old generation promotes the
// canonical instance back into the young one, so frequently-interned
// sets survive cap-crossing churn.
//
// ID-equality between live sets implies member identity up to the
// astronomically unlikely cross-type XOR collision (addrA ^ saltA ==
// addrB ^ saltB); because a conflated canonical instance would
// persistently mislabel data, the bucket walk — a cold path — verifies
// candidates member-wise rather than trusting IDs alone.
func (s *PolicySet) Intern() *PolicySet {
	if s.Len() == 0 {
		return EmptySet
	}
	if s.interned || !s.idsOK {
		return s
	}
	if internedG0Count.Load() >= maxInternedSets/2 {
		rotateInternTable()
	}
	sh := &internTable[s.hash&(numInternShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, c := range sh.g0[s.hash] {
		if equalPolicyIDs(c.ids, s.ids) && samePolicies(s.policies, c.policies) {
			statSetHits.Add(1)
			return c
		}
	}
	for i, c := range sh.g1[s.hash] {
		if equalPolicyIDs(c.ids, s.ids) && samePolicies(s.policies, c.policies) {
			// Promote: the set proved it is still hot, so it moves to the
			// young generation and survives the next rotation. Same
			// canonical pointer — union-cache entries keyed on it stay
			// valid.
			bucket := sh.g1[s.hash]
			sh.g1[s.hash] = append(bucket[:i:i], bucket[i+1:]...)
			if sh.g0 == nil {
				sh.g0 = make(map[uint64][]*PolicySet)
			}
			sh.g0[s.hash] = append(sh.g0[s.hash], c)
			internedG1Count.Add(^uint64(0))
			internedG0Count.Add(1)
			statSetHits.Add(1)
			statPromotions.Add(1)
			return c
		}
	}
	statSetMisses.Add(1)
	if sh.g0 == nil {
		sh.g0 = make(map[uint64][]*PolicySet)
	}
	// Register a fresh canonical instance rather than mutating s, which
	// may be shared with concurrent readers. The slices are immutable
	// and safely shared.
	c := &PolicySet{
		policies: s.policies,
		ids:      s.ids,
		hash:     s.hash,
		idsOK:    true,
		interned: true,
		mergers:  s.mergers,
	}
	sh.g0[s.hash] = append(sh.g0[s.hash], c)
	internedG0Count.Add(1)
	return c
}

// unionKey memoizes Union(a, b) for interned operands. Union is
// commutative, so the key is normalized by canonical hash order —
// (a, b) and (b, a) share one entry (pairs whose hashes collide may
// still occupy two, which the cap absorbs).
type unionKey struct{ a, b *PolicySet }

func newUnionKey(a, b *PolicySet) unionKey {
	if a.hash > b.hash {
		a, b = b, a
	}
	return unionKey{a, b}
}

var (
	unionCache      atomic.Pointer[sync.Map] // *sync.Map of unionKey → *PolicySet
	unionCacheCount atomic.Uint64
)

func init() { unionCache.Store(new(sync.Map)) }

// cachedUnion returns the memoized union of two interned sets.
func cachedUnion(a, b *PolicySet) (*PolicySet, bool) {
	if v, ok := unionCache.Load().Load(newUnionKey(a, b)); ok {
		statUnionHits.Add(1)
		return v.(*PolicySet), true
	}
	statUnionMisses.Add(1)
	return nil, false
}

// storeUnion records a computed union. At the cap the cache is flushed
// wholesale, so union-pair churn costs a periodic re-warm instead of
// permanently disabling memoization. An entry stored into a map that a
// concurrent flush is swapping out is simply lost, which is harmless.
func storeUnion(a, b, result *PolicySet) {
	if unionCacheCount.Load() >= maxUnionCacheEntries {
		flushUnionCache()
	}
	if _, loaded := unionCache.Load().LoadOrStore(newUnionKey(a, b), result); !loaded {
		unionCacheCount.Add(1)
	}
}

// flushUnionCache empties the memoized-union cache when it reaches its
// own cap; intern-table rotation deliberately leaves it alone.
func flushUnionCache() {
	flushMu.Lock()
	defer flushMu.Unlock()
	if unionCacheCount.Load() < maxUnionCacheEntries {
		return // another goroutine flushed first
	}
	unionCache.Store(new(sync.Map))
	unionCacheCount.Store(0)
	statFlushes.Add(1)
}

// InternStats is a snapshot of the interning machinery's counters,
// exposed for tests, benchmarks, and operational debugging.
type InternStats struct {
	// Sets is the number of canonical sets in the intern table
	// (both generations).
	Sets uint64
	// SetHits / SetMisses count Intern calls that found / created a
	// canonical instance.
	SetHits, SetMisses uint64
	// Promotions counts old-generation hits that moved a set back into
	// the young generation.
	Promotions uint64
	// UnionHits / UnionMisses count memoized-union lookups.
	UnionHits, UnionMisses uint64
	// UnionEntries is the number of memoized union results.
	UnionEntries uint64
	// Flushes counts intern-table generation rotations plus wholesale
	// union-cache evictions.
	Flushes uint64
}

// ReadInternStats returns a snapshot of the interning counters.
func ReadInternStats() InternStats {
	return InternStats{
		Sets:         internedG0Count.Load() + internedG1Count.Load(),
		SetHits:      statSetHits.Load(),
		SetMisses:    statSetMisses.Load(),
		Promotions:   statPromotions.Load(),
		UnionHits:    statUnionHits.Load(),
		UnionMisses:  statUnionMisses.Load(),
		UnionEntries: unionCacheCount.Load(),
		Flushes:      statFlushes.Load(),
	}
}
