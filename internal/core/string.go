package core

import (
	"fmt"
	"sort"
	"strings"
)

// String is a tracked string: an immutable sequence of bytes where every
// byte carries a (possibly empty) policy set. This is the Go analogue of
// the paper's modified PHP zval — RESIN "attaches a policy object to a
// datum — a primitive data element such as an integer or a character in a
// string" and tracks policies "in a fine grained manner" (§3.4): when
// "foo" (policy p1) is concatenated with "bar" (policy p2), the first three
// bytes of "foobar" carry only p1 and the last three only p2, and slicing
// the first three bytes back out recovers a string carrying only p1.
//
// The representation is the raw string plus a canonical span list: spans
// are sorted, non-overlapping, non-empty, lie within the string, carry
// non-empty policy sets, and adjacent spans with equal policy sets are
// coalesced. Bytes not covered by any span carry no policies.
//
// String values are immutable; every operation returns a new String.
// The zero value is the empty string with no policies.
type String struct {
	s     string
	spans []span
}

// span attaches a policy set to the byte range [start, end) of a String.
type span struct {
	start, end int
	ps         *PolicySet
}

// NewString wraps a raw Go string with no policies attached.
func NewString(s string) String { return String{s: s} }

// NewStringPolicy wraps a raw Go string with policies attached to every byte.
func NewStringPolicy(s string, ps ...Policy) String {
	return NewString(s).WithPolicy(ps...)
}

// makeString builds a String from a raw string and a span list that is
// already sorted and non-overlapping, normalizing it into canonical form.
func makeString(s string, spans []span) String {
	return String{s: s, spans: normalizeSpans(s, spans)}
}

// normalizeSpans clips spans to the string, drops empty spans and empty
// policy sets, and coalesces adjacent spans with equal policy sets. The
// input must be sorted by start and non-overlapping.
func normalizeSpans(s string, spans []span) []span {
	if len(spans) == 0 {
		return nil
	}
	out := make([]span, 0, len(spans))
	for _, sp := range spans {
		if sp.start < 0 {
			sp.start = 0
		}
		if sp.end > len(s) {
			sp.end = len(s)
		}
		if sp.start >= sp.end || sp.ps.IsEmpty() {
			continue
		}
		if n := len(out); n > 0 && out[n-1].end == sp.start && out[n-1].ps.Equal(sp.ps) {
			out[n-1].end = sp.end
			continue
		}
		out = append(out, sp)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Raw returns the underlying Go string, discarding no data but carrying no
// policies. Exporting Raw output bypasses tracking; it is intended for
// boundaries that have already run their filters, and for diagnostics.
func (t String) Raw() string { return t.s }

// Len returns the length of the string in bytes.
func (t String) Len() int { return len(t.s) }

// IsEmpty reports whether the string has zero length.
func (t String) IsEmpty() bool { return len(t.s) == 0 }

// IsTainted reports whether any byte of the string carries any policy.
func (t String) IsTainted() bool { return len(t.spans) > 0 }

// String implements fmt.Stringer; it renders the raw text (use Describe for
// a policy-annotated rendering).
func (t String) String() string { return t.s }

// Describe renders the string together with its policy spans for
// diagnostics, e.g. `"foobar" [0:3 {P1}] [3:6 {P2}]`.
func (t String) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%q", t.s)
	for _, sp := range t.spans {
		fmt.Fprintf(&b, " [%d:%d %s]", sp.start, sp.end, sp.ps.String())
	}
	return b.String()
}

// PoliciesAt returns the policy set attached to the byte at index i, or the
// empty set if i is out of range or untracked.
func (t String) PoliciesAt(i int) *PolicySet {
	for _, sp := range t.spans {
		if i < sp.start {
			break
		}
		if i < sp.end {
			return sp.ps
		}
	}
	return EmptySet
}

// Policies returns the union of every policy attached to any byte of the
// string. This is the paper's policy_get(data) for whole-string queries.
func (t String) Policies() *PolicySet {
	out := EmptySet
	for _, sp := range t.spans {
		out = out.Union(sp.ps)
	}
	return out
}

// SpanCount returns the number of distinct policy spans; useful for tests
// and for the span-coalescing ablation benchmark.
func (t String) SpanCount() int { return len(t.spans) }

// EachSpan calls fn for every maximal run of bytes [start, end) carrying
// the same policy set, including uncovered runs (with the empty set), in
// order. fn returning a non-nil error stops the walk and returns the error.
func (t String) EachSpan(fn func(start, end int, ps *PolicySet) error) error {
	pos := 0
	for _, sp := range t.spans {
		if pos < sp.start {
			if err := fn(pos, sp.start, EmptySet); err != nil {
				return err
			}
		}
		if err := fn(sp.start, sp.end, sp.ps); err != nil {
			return err
		}
		pos = sp.end
	}
	if pos < len(t.s) {
		return fn(pos, len(t.s), EmptySet)
	}
	return nil
}

// EachTaintedSpan calls fn for every policy-carrying span, in order.
func (t String) EachTaintedSpan(fn func(start, end int, ps *PolicySet) error) error {
	for _, sp := range t.spans {
		if err := fn(sp.start, sp.end, sp.ps); err != nil {
			return err
		}
	}
	return nil
}

// WithPolicy returns a copy of the string with the given policies added to
// every byte (the paper's policy_add(data, policy)).
func (t String) WithPolicy(ps ...Policy) String {
	return t.WithPolicyRange(0, len(t.s), ps...)
}

// WithPolicyRange returns a copy with the given policies added to bytes in
// [start, end), clipped to the string bounds.
func (t String) WithPolicyRange(start, end int, ps ...Policy) String {
	return t.withSetRange(start, end, NewPolicySet(ps...))
}

// withSetRange adds every policy of add to bytes in [start, end),
// clipped to the string bounds.
func (t String) withSetRange(start, end int, add *PolicySet) String {
	if add.IsEmpty() || len(t.s) == 0 {
		return t
	}
	if start < 0 {
		start = 0
	}
	if end > len(t.s) {
		end = len(t.s)
	}
	if start >= end {
		return t
	}
	if len(t.spans) == 0 {
		// Fast path for the common "taint a fresh string" case: one new
		// span, no re-normalization walk.
		return String{s: t.s, spans: []span{{start, end, add}}}
	}
	return t.mapRange(start, end, func(old *PolicySet) *PolicySet {
		return old.Union(add)
	})
}

// WithPolicySet returns a copy of the string with every policy of ps
// added to every byte. Callers that taint many strings with the same
// policies should build the set once (ideally interned, see
// PolicySet.Intern) and attach it through this method, so all the
// resulting spans share one canonical set and downstream comparisons
// stay on the pointer fast paths.
func (t String) WithPolicySet(ps *PolicySet) String { return t.withSet(ps) }

// WithoutPolicy returns a copy with the given policy objects removed from
// every byte (the paper's policy_remove(data, policy)).
func (t String) WithoutPolicy(ps ...Policy) String {
	if len(t.spans) == 0 {
		return t
	}
	return t.mapRange(0, len(t.s), func(old *PolicySet) *PolicySet {
		out := old
		for _, p := range ps {
			out = out.Remove(p)
		}
		return out
	})
}

// WithoutPolicyIf returns a copy with all policies satisfying pred removed
// from every byte. Filters use this to strip policy classes at boundaries
// (e.g. an encryption function stripping confidentiality policies, §3.2).
func (t String) WithoutPolicyIf(pred func(Policy) bool) String {
	if len(t.spans) == 0 {
		return t
	}
	return t.mapRange(0, len(t.s), func(old *PolicySet) *PolicySet {
		return old.RemoveIf(pred)
	})
}

// mapRange rebuilds the span list, applying fn to the policy set of every
// byte in [start, end); bytes outside keep their sets. fn receives the
// existing set (possibly empty) and returns the replacement set.
func (t String) mapRange(start, end int, fn func(*PolicySet) *PolicySet) String {
	// Walk every maximal run (covered or not) and split it at the range
	// boundaries, applying fn inside the range; a run splits into at most
	// three segments, so pre-size for the common case.
	spans := make([]span, 0, len(t.spans)+2)
	t.EachSpan(func(s, e int, ps *PolicySet) error { //nolint:errcheck // fn never fails
		for s < e {
			segEnd := e
			inRange := s >= start && s < end
			if inRange && end < segEnd {
				segEnd = end
			}
			if !inRange && s < start && start < segEnd {
				segEnd = start
			}
			nps := ps
			if inRange {
				nps = fn(ps)
			}
			spans = append(spans, span{s, segEnd, nps})
			s = segEnd
		}
		return nil
	})
	return makeString(t.s, spans)
}

// HasPolicyEverywhere reports whether every byte of the string carries at
// least one policy satisfying pred. The empty string satisfies it
// vacuously. The interpreter's code-import filter uses this: "filter_read
// verifies that each character in $buf has the CodeApproval policy" (§5.2).
func (t String) HasPolicyEverywhere(pred func(Policy) bool) bool {
	ok := true
	t.EachSpan(func(s, e int, ps *PolicySet) error { //nolint:errcheck
		if !ps.Any(pred) {
			ok = false
		}
		return nil
	})
	return ok
}

// FindPolicy returns the first byte range carrying a policy satisfying
// pred, or ok=false if no byte does. SQL/HTML filters use this to point at
// the offending characters in error messages.
func (t String) FindPolicy(pred func(Policy) bool) (start, end int, ok bool) {
	for _, sp := range t.spans {
		if sp.ps.Any(pred) {
			return sp.start, sp.end, true
		}
	}
	return 0, 0, false
}

// invariantErr checks the canonical-form invariants; tests and the
// property-based suite call this after every operation.
func (t String) invariantErr() error {
	prev := 0
	for i, sp := range t.spans {
		if sp.start < 0 || sp.end > len(t.s) {
			return fmt.Errorf("span %d [%d:%d) outside string of len %d", i, sp.start, sp.end, len(t.s))
		}
		if sp.start >= sp.end {
			return fmt.Errorf("span %d [%d:%d) empty or inverted", i, sp.start, sp.end)
		}
		if sp.start < prev {
			return fmt.Errorf("span %d [%d:%d) overlaps or unsorted (prev end %d)", i, sp.start, sp.end, prev)
		}
		if sp.ps.IsEmpty() {
			return fmt.Errorf("span %d [%d:%d) carries empty policy set", i, sp.start, sp.end)
		}
		if i > 0 && t.spans[i-1].end == sp.start && t.spans[i-1].ps.Equal(sp.ps) {
			return fmt.Errorf("span %d [%d:%d) not coalesced with predecessor", i, sp.start, sp.end)
		}
		prev = sp.end
	}
	return nil
}

// sortSpans sorts a span slice by start offset (helper for builders that
// assemble spans out of order).
func sortSpans(spans []span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
}
