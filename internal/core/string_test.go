package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Test policy types.

type allowPolicy struct{ Name string }

func (p *allowPolicy) ExportCheck(ctx *Context) error { return nil }

type denyPolicy struct{ Reason string }

func (p *denyPolicy) ExportCheck(ctx *Context) error { return errors.New(p.Reason) }

// intersectPolicy models the paper's AuthenticData: the merge result keeps
// the policy only if the other operand also carries a policy of the same
// class (intersection strategy).
type intersectPolicy struct{ Tag string }

func (p *intersectPolicy) ExportCheck(ctx *Context) error { return nil }

func (p *intersectPolicy) Merge(other *PolicySet) ([]Policy, error) {
	keep := other.Any(func(q Policy) bool {
		_, ok := q.(*intersectPolicy)
		return ok
	})
	if keep {
		return []Policy{p}, nil
	}
	return nil, nil
}

// refusePolicy vetoes any merge.
type refusePolicy struct{}

func (p *refusePolicy) ExportCheck(ctx *Context) error { return nil }
func (p *refusePolicy) Merge(other *PolicySet) ([]Policy, error) {
	return nil, errors.New("refuses to merge")
}

func mustInv(t *testing.T, s String) {
	t.Helper()
	if err := s.invariantErr(); err != nil {
		t.Fatalf("invariant violated: %v on %s", err, s.Describe())
	}
}

func TestNewStringUntainted(t *testing.T) {
	s := NewString("hello")
	mustInv(t, s)
	if s.IsTainted() {
		t.Error("fresh string should be untainted")
	}
	if s.Raw() != "hello" || s.Len() != 5 {
		t.Errorf("raw=%q len=%d", s.Raw(), s.Len())
	}
	if got := s.Policies(); !got.IsEmpty() {
		t.Errorf("policies = %s, want empty", got)
	}
}

func TestWithPolicyWholeString(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewStringPolicy("secret", p)
	mustInv(t, s)
	if !s.IsTainted() {
		t.Fatal("should be tainted")
	}
	for i := 0; i < s.Len(); i++ {
		if !s.PoliciesAt(i).Contains(p) {
			t.Fatalf("byte %d missing policy", i)
		}
	}
	if s.SpanCount() != 1 {
		t.Errorf("span count = %d, want 1", s.SpanCount())
	}
}

func TestWithPolicyRangeClipping(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewString("abcdef").WithPolicyRange(-3, 100, p)
	mustInv(t, s)
	if !s.HasPolicyEverywhere(func(Policy) bool { return true }) {
		t.Error("clipped range should cover all bytes")
	}
	s2 := NewString("abcdef").WithPolicyRange(4, 2, p)
	if s2.IsTainted() {
		t.Error("inverted range should attach nothing")
	}
	s3 := NewString("").WithPolicy(p)
	if s3.IsTainted() {
		t.Error("empty string cannot carry policies")
	}
}

func TestConcatPreservesPerCharacterPolicies(t *testing.T) {
	// The paper's example: "foo" with p1 concatenated with "bar" with p2.
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	foo := NewStringPolicy("foo", p1)
	bar := NewStringPolicy("bar", p2)
	foobar := Concat(foo, bar)
	mustInv(t, foobar)
	if foobar.Raw() != "foobar" {
		t.Fatalf("raw = %q", foobar.Raw())
	}
	for i := 0; i < 3; i++ {
		ps := foobar.PoliciesAt(i)
		if !ps.Contains(p1) || ps.Contains(p2) {
			t.Errorf("byte %d: got %s, want exactly {p1}", i, ps)
		}
	}
	for i := 3; i < 6; i++ {
		ps := foobar.PoliciesAt(i)
		if !ps.Contains(p2) || ps.Contains(p1) {
			t.Errorf("byte %d: got %s, want exactly {p2}", i, ps)
		}
	}
	// "If the programmer then takes the first three characters of the
	// combined string, the resulting substring will only have policy p1."
	sub := foobar.Slice(0, 3)
	mustInv(t, sub)
	if got := sub.Policies(); !got.Contains(p1) || got.Contains(p2) || got.Len() != 1 {
		t.Errorf("substring policies = %s, want exactly {p1}", got)
	}
}

func TestConcatCoalescesEqualSets(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	a := NewStringPolicy("aa", p)
	b := NewStringPolicy("bb", p)
	c := Concat(a, b)
	mustInv(t, c)
	if c.SpanCount() != 1 {
		t.Errorf("span count = %d, want 1 (adjacent equal sets must coalesce)", c.SpanCount())
	}
}

func TestSliceEdges(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewString("abcdef").WithPolicyRange(2, 4, p)
	cases := []struct {
		i, j    int
		raw     string
		tainted bool
	}{
		{0, 6, "abcdef", true},
		{0, 2, "ab", false},
		{2, 4, "cd", true},
		{3, 6, "def", true},
		{4, 6, "ef", false},
		{-5, 100, "abcdef", true},
		{5, 2, "", false},
	}
	for _, c := range cases {
		got := s.Slice(c.i, c.j)
		mustInv(t, got)
		if got.Raw() != c.raw || got.IsTainted() != c.tainted {
			t.Errorf("Slice(%d,%d) = %q tainted=%v, want %q tainted=%v",
				c.i, c.j, got.Raw(), got.IsTainted(), c.raw, c.tainted)
		}
	}
}

func TestWithoutPolicy(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	s := NewStringPolicy("data", p1, p2).WithoutPolicy(p1)
	mustInv(t, s)
	if s.Policies().Contains(p1) {
		t.Error("p1 should be removed")
	}
	if !s.Policies().Contains(p2) {
		t.Error("p2 should remain")
	}
	s2 := s.WithoutPolicy(p2)
	mustInv(t, s2)
	if s2.IsTainted() {
		t.Error("all policies removed, should be untainted")
	}
}

func TestWithoutPolicyIf(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	d := &denyPolicy{Reason: "no"}
	s := NewStringPolicy("data", p1, d).WithoutPolicyIf(func(p Policy) bool {
		_, ok := p.(*denyPolicy)
		return ok
	})
	mustInv(t, s)
	if s.Policies().Len() != 1 || !s.Policies().Contains(p1) {
		t.Errorf("got %s, want exactly {p1}", s.Policies())
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	a := NewStringPolicy("alpha", p1)
	b := NewStringPolicy("beta", p2)
	joined := Join([]String{a, b}, NewString(","))
	mustInv(t, joined)
	parts := joined.Split(",")
	if len(parts) != 2 {
		t.Fatalf("split into %d parts", len(parts))
	}
	if !parts[0].Policies().Contains(p1) || parts[0].Policies().Contains(p2) {
		t.Errorf("part 0 policies = %s", parts[0].Policies())
	}
	if !parts[1].Policies().Contains(p2) || parts[1].Policies().Contains(p1) {
		t.Errorf("part 1 policies = %s", parts[1].Policies())
	}
}

func TestSplitEmptySeparator(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewString("ab").WithPolicyRange(1, 2, p)
	parts := s.Split("")
	if len(parts) != 2 {
		t.Fatalf("got %d parts", len(parts))
	}
	if parts[0].IsTainted() || !parts[1].IsTainted() {
		t.Error("per-byte split should keep per-byte policies")
	}
}

func TestSplitN(t *testing.T) {
	s := NewString("a,b,c,d")
	parts := s.SplitN(",", 2)
	if len(parts) != 2 || parts[0].Raw() != "a" || parts[1].Raw() != "b,c,d" {
		t.Errorf("SplitN = %v", parts)
	}
}

func TestFields(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := Concat(NewString("  one "), NewStringPolicy("two", p), NewString("\tthree\n"))
	fs := s.Fields()
	if len(fs) != 3 {
		t.Fatalf("fields = %d", len(fs))
	}
	if fs[0].Raw() != "one" || fs[1].Raw() != "twothree" && fs[1].Raw() != "two" {
		// "two" directly abuts "\tthree"? No — "two" + "\tthree" has a tab.
		t.Logf("fields: %q %q %q", fs[0].Raw(), fs[1].Raw(), fs[2].Raw())
	}
	if !fs[1].Policies().Contains(p) {
		t.Error("field 'two' lost its policy")
	}
	if fs[2].IsTainted() {
		t.Error("field 'three' should be untainted")
	}
}

func TestReplacePropagation(t *testing.T) {
	pOld := &allowPolicy{Name: "old"}
	pNew := &allowPolicy{Name: "new"}
	s := Concat(NewString("x="), NewStringPolicy("VAL", pOld), NewString(";y=VAL"))
	out := s.ReplaceAll("VAL", NewStringPolicy("42", pNew))
	mustInv(t, out)
	if out.Raw() != "x=42;y=42" {
		t.Fatalf("raw = %q", out.Raw())
	}
	if out.Policies().Contains(pOld) {
		t.Error("replaced bytes should not keep the old policy")
	}
	// Both inserted copies carry pNew.
	if !out.Slice(2, 4).Policies().Contains(pNew) || !out.Slice(7, 9).Policies().Contains(pNew) {
		t.Error("inserted bytes missing new policy")
	}
	if out.Slice(0, 2).IsTainted() {
		t.Error("untouched bytes gained a policy")
	}
}

func TestTrimFamily(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewString("  abc  ").WithPolicyRange(2, 5, p)
	trimmed := s.TrimSpace()
	mustInv(t, trimmed)
	if trimmed.Raw() != "abc" || !trimmed.HasPolicyEverywhere(func(Policy) bool { return true }) {
		t.Errorf("TrimSpace = %s", trimmed.Describe())
	}
	if got := NewString("pre.body").TrimPrefix("pre."); got.Raw() != "body" {
		t.Errorf("TrimPrefix = %q", got.Raw())
	}
	if got := NewString("body.suf").TrimSuffix(".suf"); got.Raw() != "body" {
		t.Errorf("TrimSuffix = %q", got.Raw())
	}
	if got := NewString("abc").TrimPrefix("zz"); got.Raw() != "abc" {
		t.Errorf("no-op TrimPrefix = %q", got.Raw())
	}
}

func TestCaseMappingPreservesSpans(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewString("MiXeD").WithPolicyRange(1, 3, p)
	up := s.ToUpper()
	lo := s.ToLower()
	mustInv(t, up)
	mustInv(t, lo)
	if up.Raw() != "MIXED" || lo.Raw() != "mixed" {
		t.Errorf("case mapping: %q %q", up.Raw(), lo.Raw())
	}
	for _, v := range []String{up, lo} {
		if !v.PoliciesAt(1).Contains(p) || !v.PoliciesAt(2).Contains(p) || v.PoliciesAt(0).Contains(p) {
			t.Errorf("case mapping moved spans: %s", v.Describe())
		}
	}
}

func TestRepeat(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewString("ab").WithPolicyRange(0, 1, p).Repeat(3)
	mustInv(t, s)
	if s.Raw() != "ababab" {
		t.Fatalf("raw = %q", s.Raw())
	}
	for i := 0; i < 6; i++ {
		want := i%2 == 0
		if s.PoliciesAt(i).Contains(p) != want {
			t.Errorf("byte %d policy presence = %v, want %v", i, !want, want)
		}
	}
	if !NewString("x").Repeat(0).IsEmpty() || !NewString("x").Repeat(-1).IsEmpty() {
		t.Error("Repeat(<=0) should be empty")
	}
}

func TestFormatPropagation(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	pw := NewStringPolicy("hunter2", p)
	msg := Format("Your password is %s. Stay safe, %s!", pw, NewString("alice"))
	mustInv(t, msg)
	want := "Your password is hunter2. Stay safe, alice!"
	if msg.Raw() != want {
		t.Fatalf("raw = %q, want %q", msg.Raw(), want)
	}
	start := strings.Index(want, "hunter2")
	for i := 0; i < msg.Len(); i++ {
		inPw := i >= start && i < start+len("hunter2")
		if msg.PoliciesAt(i).Contains(p) != inPw {
			t.Errorf("byte %d (%q): policy presence mismatch", i, want[i])
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	if got := Format("%d-%d", NewInt(3), 4).Raw(); got != "3-4" {
		t.Errorf("%%d = %q", got)
	}
	if got := Format("%q", NewString("a\"b")).Raw(); got != `"a\"b"` {
		t.Errorf("%%q = %q", got)
	}
	if got := Format("100%%").Raw(); got != "100%" {
		t.Errorf("%%%% = %q", got)
	}
	if got := Format("%x", 255).Raw(); got != "ff" {
		t.Errorf("fallback verb = %q", got)
	}
	if got := Format("%s").Raw(); !strings.Contains(got, "MISSING") {
		t.Errorf("missing arg = %q", got)
	}
	if got := Format("trail%").Raw(); got != "trail%" {
		t.Errorf("trailing %% = %q", got)
	}
	p := &allowPolicy{Name: "p"}
	n := NewIntPolicy(7, p)
	out := Format("id=%d", n)
	if !out.Slice(3, 4).Policies().Contains(p) {
		t.Error("tracked int policies should cover rendered digits")
	}
}

func TestToIntMerges(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	n, err := NewStringPolicy("42", p).ToInt()
	if err != nil {
		t.Fatal(err)
	}
	if n.Value() != 42 || !n.Policies().Contains(p) {
		t.Errorf("ToInt = %d %s", n.Value(), n.Policies())
	}
	if _, err := NewString("nope").ToInt(); err == nil {
		t.Error("non-numeric ToInt should fail")
	}
	// Intersection policy on only one operand's characters disappears.
	ip := &intersectPolicy{Tag: "auth"}
	mixed := Concat(NewStringPolicy("1", ip), NewString("2"))
	n2, err := mixed.ToInt()
	if err != nil {
		t.Fatal(err)
	}
	if n2.Policies().Contains(ip) {
		t.Error("intersection merge should drop policy when other side lacks it")
	}
}

func TestBuilderMatchesConcat(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	var b Builder
	b.Append(NewStringPolicy("aa", p1))
	b.AppendRaw("--")
	b.Append(NewStringPolicy("bb", p2))
	b.AppendByte('!')
	b.AppendBytePolicies('?', NewPolicySet(p1))
	got := b.String()
	mustInv(t, got)
	want := Concat(NewStringPolicy("aa", p1), NewString("--"), NewStringPolicy("bb", p2),
		NewString("!"), NewStringPolicy("?", p1))
	if got.Raw() != want.Raw() {
		t.Fatalf("raw %q != %q", got.Raw(), want.Raw())
	}
	for i := 0; i < got.Len(); i++ {
		if !got.PoliciesAt(i).Equal(want.PoliciesAt(i)) {
			t.Errorf("byte %d: %s vs %s", i, got.PoliciesAt(i), want.PoliciesAt(i))
		}
	}
	if b.Len() != got.Len() {
		t.Errorf("Builder.Len = %d, want %d", b.Len(), got.Len())
	}
}

func TestFindPolicyAndEverywhere(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewString("abcdef").WithPolicyRange(2, 4, p)
	start, end, ok := s.FindPolicy(func(Policy) bool { return true })
	if !ok || start != 2 || end != 4 {
		t.Errorf("FindPolicy = %d %d %v", start, end, ok)
	}
	if s.HasPolicyEverywhere(func(Policy) bool { return true }) {
		t.Error("partial coverage is not everywhere")
	}
	if !NewString("").HasPolicyEverywhere(func(Policy) bool { return false }) {
		t.Error("empty string is vacuously covered")
	}
	if _, _, ok := NewString("clean").FindPolicy(func(Policy) bool { return true }); ok {
		t.Error("untainted string should find nothing")
	}
}

func TestEachSpanCoversWholeString(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewString("0123456789").WithPolicyRange(2, 4, p).WithPolicyRange(7, 9, p)
	var total int
	prevEnd := 0
	s.EachSpan(func(start, end int, ps *PolicySet) error {
		if start != prevEnd {
			t.Errorf("gap: span starts at %d, previous ended at %d", start, prevEnd)
		}
		prevEnd = end
		total += end - start
		return nil
	})
	if total != s.Len() {
		t.Errorf("EachSpan covered %d bytes of %d", total, s.Len())
	}
	wantErr := errors.New("stop")
	err := s.EachSpan(func(start, end int, ps *PolicySet) error { return wantErr })
	if err != wantErr {
		t.Errorf("EachSpan error propagation: %v", err)
	}
}

// ---- Property-based tests against a per-byte oracle ----

// oracle tracks policies naively: one policy slice per byte.
type oracle struct {
	s  string
	ps [][]Policy
}

func oracleOf(t String) oracle {
	o := oracle{s: t.Raw(), ps: make([][]Policy, t.Len())}
	for i := 0; i < t.Len(); i++ {
		o.ps[i] = t.PoliciesAt(i).Policies()
	}
	return o
}

func (o oracle) concat(b oracle) oracle {
	return oracle{s: o.s + b.s, ps: append(append([][]Policy{}, o.ps...), b.ps...)}
}

func (o oracle) slice(i, j int) oracle {
	if i < 0 {
		i = 0
	}
	if j > len(o.s) {
		j = len(o.s)
	}
	if i >= j {
		return oracle{}
	}
	return oracle{s: o.s[i:j], ps: o.ps[i:j]}
}

func (o oracle) equalString(t *testing.T, s String) {
	t.Helper()
	if s.Raw() != o.s {
		t.Fatalf("raw mismatch: %q vs oracle %q", s.Raw(), o.s)
	}
	for i := range o.ps {
		got := s.PoliciesAt(i)
		want := NewPolicySet(o.ps[i]...)
		if !got.Equal(want) {
			t.Fatalf("byte %d: got %s want %s (string %s)", i, got, want, s.Describe())
		}
	}
}

// TestQuickRandomOpSequences runs random operation sequences over both the
// real String and the oracle, then compares byte-by-byte policies and
// checks canonical-form invariants after every step.
func TestQuickRandomOpSequences(t *testing.T) {
	pool := []Policy{
		&allowPolicy{Name: "A"}, &allowPolicy{Name: "B"},
		&allowPolicy{Name: "C"}, &allowPolicy{Name: "D"},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cur := NewString("the quick brown fox")
		oc := oracleOf(cur)
		for step := 0; step < 40; step++ {
			switch rng.Intn(5) {
			case 0: // attach policy to random range
				p := pool[rng.Intn(len(pool))]
				i := rng.Intn(cur.Len() + 1)
				j := rng.Intn(cur.Len() + 1)
				cur = cur.WithPolicyRange(i, j, p)
				for k := i; k < j && k < len(oc.s); k++ {
					found := false
					for _, q := range oc.ps[k] {
						if q == p {
							found = true
						}
					}
					if !found {
						oc.ps[k] = append(append([]Policy{}, oc.ps[k]...), p)
					}
				}
			case 1: // concat random tainted suffix
				p := pool[rng.Intn(len(pool))]
				suffix := NewStringPolicy(fmt.Sprintf("<%d>", step), p)
				cur = Concat(cur, suffix)
				oc = oc.concat(oracleOf(suffix))
			case 2: // slice random subrange (keep it non-degenerate)
				if cur.Len() < 2 {
					continue
				}
				i := rng.Intn(cur.Len() / 2)
				j := i + 1 + rng.Intn(cur.Len()-i-1)
				cur = cur.Slice(i, j)
				oc = oc.slice(i, j)
			case 3: // remove one policy everywhere
				p := pool[rng.Intn(len(pool))]
				cur = cur.WithoutPolicy(p)
				for k := range oc.ps {
					var out []Policy
					for _, q := range oc.ps[k] {
						if q != p {
							out = append(out, q)
						}
					}
					oc.ps[k] = out
				}
			case 4: // self-concat (doubling)
				if cur.Len() > 2000 {
					continue
				}
				cur = Concat(cur, cur)
				oc = oc.concat(oc)
			}
			if err := cur.invariantErr(); err != nil {
				t.Logf("seed %d step %d: invariant: %v", seed, step, err)
				return false
			}
		}
		oc.equalString(t, cur)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcatSliceIdentity checks s == Concat(s[:k], s[k:]) for random
// split points, byte-for-byte including policies.
func TestQuickConcatSliceIdentity(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	f := func(a, b string, k uint8) bool {
		s := Concat(NewStringPolicy(a, p1), NewStringPolicy(b, p2))
		cut := int(k) % (s.Len() + 1)
		re := Concat(s.Slice(0, cut), s.Slice(cut, s.Len()))
		if re.Raw() != s.Raw() {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if !re.PoliciesAt(i).Equal(s.PoliciesAt(i)) {
				return false
			}
		}
		return re.invariantErr() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplitJoinIdentity checks Join(Split(s, sep), sep) == s when the
// policy layout respects separator boundaries.
func TestQuickSplitJoinIdentity(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	f := func(parts []string) bool {
		elems := make([]String, 0, len(parts))
		for i, raw := range parts {
			raw = strings.ReplaceAll(raw, "|", "_")
			if i%2 == 0 {
				elems = append(elems, NewStringPolicy(raw, p))
			} else {
				elems = append(elems, NewString(raw))
			}
		}
		if len(elems) == 0 {
			return true
		}
		joined := Join(elems, NewString("|"))
		split := joined.Split("|")
		if len(split) != len(elems) {
			return false
		}
		for i := range elems {
			if split[i].Raw() != elems[i].Raw() {
				return false
			}
			for k := 0; k < split[i].Len(); k++ {
				if !split[i].PoliciesAt(k).Equal(elems[i].PoliciesAt(k)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
