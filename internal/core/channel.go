package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Channel is a data-flow boundary: an I/O channel or function-call
// interface with an attached filter chain and context hash table (§3.2).
// The runtime pre-defines default channels around all I/O (§3.2.1);
// substrates (HTTP, email, SQL, files, sockets, the interpreter) each
// create channels of the appropriate kind, and applications reach a
// channel via its owner (e.g. sock.__filter in the paper's examples) to
// annotate its context or replace its filters.
//
// Channels also implement the output-buffering mechanism of §5.5: an
// application may open a buffer before running output-generating code that
// can fail an assertion, then release the buffer on success or discard it
// (optionally substituting alternate output) when an assertion exception
// is caught. Filters still run at write time — that is what raises the
// assertion error — buffering only defers making the output visible.
//
// A Channel is safe for concurrent use.
type Channel struct {
	runtime *Runtime
	ctx     *Context

	mu      sync.Mutex
	filters []Filter
	// out accumulates released output; sink, when non-nil, additionally
	// receives the raw bytes of released output.
	out  Builder
	sink io.Writer
	// bufs is the stack of open output buffers (§5.5). Writes land in the
	// innermost open buffer.
	bufs []*Builder
	// readOff and writeOff track cumulative offsets handed to filters.
	readOff  int64
	writeOff int64
}

// NewChannel creates a boundary of the given kind with the given filter
// chain. A nil runtime means an untracked channel (filters skipped),
// matching Runtime with tracking disabled.
func NewChannel(rt *Runtime, kind string, filters ...Filter) *Channel {
	return &Channel{runtime: rt, ctx: NewContext(kind), filters: filters}
}

// Context returns the channel's context hash table.
func (ch *Channel) Context() *Context { return ch.ctx }

// Runtime returns the runtime the channel belongs to (nil for untracked
// channels).
func (ch *Channel) Runtime() *Runtime { return ch.runtime }

// SetSink directs the raw bytes of released output to w, in addition to
// the channel's internal capture buffer.
func (ch *Channel) SetSink(w io.Writer) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.sink = w
}

// Filters returns a copy of the current filter chain.
func (ch *Channel) Filters() []Filter {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	out := make([]Filter, len(ch.filters))
	copy(out, ch.filters)
	return out
}

// PushFilter appends a filter to the chain; it runs after existing ones.
func (ch *Channel) PushFilter(f Filter) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.filters = append(ch.filters, f)
}

// SetFilters replaces the entire filter chain. The script-injection
// assertion uses this to *replace* the interpreter's default import filter
// (§5.2), since the default filter "always permits data that has no
// policy" while the assertion must reject such data.
func (ch *Channel) SetFilters(fs ...Filter) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.filters = append([]Filter(nil), fs...)
}

// tracking reports whether this channel's filters should run.
func (ch *Channel) tracking() bool { return ch.runtime != nil && ch.runtime.Tracking() }

// Write sends data out through the boundary: every WriteFilter in the
// chain runs in order (each may rewrite the data); if all pass, the data
// is appended to the innermost open buffer, or to the channel output when
// no buffer is open. On filter error nothing is appended.
func (ch *Channel) Write(data String) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	off := ch.writeOff
	if ch.tracking() {
		lin := lineageOn()
		for _, f := range ch.filters {
			wf, ok := f.(WriteFilter)
			if !ok {
				continue
			}
			in := data
			var err error
			data, err = wf.FilterWrite(ch, data, off)
			if err != nil {
				if lin && len(in.spans) > 0 {
					lineageRecordSpans(in, "filter-deny", lineageFilterNode(f, ch.ctx))
				}
				ch.runtime.noteViolation(err)
				return err
			}
			if lin && len(data.spans) > 0 {
				lineageRecordSpans(data, "filter-pass", lineageFilterNode(f, ch.ctx))
			}
		}
	}
	ch.writeOff += int64(data.Len())
	if n := len(ch.bufs); n > 0 {
		ch.bufs[n-1].Append(data)
		return nil
	}
	return ch.emit(data)
}

// WriteRaw is a convenience wrapper writing an untracked string.
func (ch *Channel) WriteRaw(s string) error { return ch.Write(NewString(s)) }

// emit appends released data to the capture buffer and optional sink.
// Caller holds ch.mu.
func (ch *Channel) emit(data String) error {
	ch.out.Append(data)
	if ch.sink != nil {
		if _, err := io.WriteString(ch.sink, data.Raw()); err != nil {
			return fmt.Errorf("resin: channel sink: %w", err)
		}
	}
	return nil
}

// Read brings data in through the boundary: every ReadFilter runs in order
// (each may attach policies or rewrite the data); the result is returned.
func (ch *Channel) Read(data String) (String, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	off := ch.readOff
	if ch.tracking() {
		lin := lineageOn()
		for _, f := range ch.filters {
			rf, ok := f.(ReadFilter)
			if !ok {
				continue
			}
			in := data
			var err error
			data, err = rf.FilterRead(ch, data, off)
			if err != nil {
				if lin && len(in.spans) > 0 {
					lineageRecordSpans(in, "filter-deny", lineageFilterNode(f, ch.ctx))
				}
				ch.runtime.noteViolation(err)
				return String{}, err
			}
			// A read filter that attaches policies (TaintReadFilter) makes
			// this the value's source edge.
			if lin && len(data.spans) > 0 {
				lineageRecordSpans(data, "filter-pass", lineageFilterNode(f, ch.ctx))
			}
		}
	}
	ch.readOff += int64(data.Len())
	return data, nil
}

// Call interposes on a function call through this boundary: every
// FuncFilter runs in order, each receiving the (possibly rewritten)
// argument list and returning a replacement. The final argument list is
// returned for the caller to execute, or the filter chain may have
// executed the call itself and returned results — the convention is the
// filter's choice, as in the paper ("filter_func can check or alter the
// function's arguments and return value").
func (ch *Channel) Call(args []any) ([]any, error) {
	ch.mu.Lock()
	fs := make([]Filter, len(ch.filters))
	copy(fs, ch.filters)
	tracking := ch.tracking()
	ch.mu.Unlock()
	if !tracking {
		return args, nil
	}
	lin := lineageOn()
	var err error
	for _, f := range fs {
		ff, ok := f.(FuncFilter)
		if !ok {
			continue
		}
		in := args
		args, err = ff.FilterFunc(ch, args)
		if err != nil {
			if lin {
				lineageRecordArgs(in, "filter-deny", lineageFilterNode(f, ch.ctx))
			}
			ch.runtime.noteViolation(err)
			return nil, err
		}
		if lin {
			lineageRecordArgs(args, "filter-pass", lineageFilterNode(f, ch.ctx))
		}
	}
	return args, nil
}

// Output returns the tracked data released through the channel so far.
func (ch *Channel) Output() String {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.out.String()
}

// RawOutput returns the raw text released through the channel so far.
func (ch *Channel) RawOutput() string {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.out.String().Raw()
}

// ResetOutput clears the capture buffer (between simulated responses).
func (ch *Channel) ResetOutput() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.out = Builder{}
	ch.writeOff = 0
	ch.readOff = 0
	ch.bufs = nil
}

// ErrNoBuffer is returned by ReleaseBuffer/DiscardBuffer when no output
// buffer is open.
var ErrNoBuffer = errors.New("resin: no open output buffer")

// BeginBuffer opens a new output buffer (§5.5): subsequent writes are
// withheld until ReleaseBuffer or DiscardBuffer. Buffers nest.
func (ch *Channel) BeginBuffer() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.bufs = append(ch.bufs, &Builder{})
}

// ReleaseBuffer closes the innermost buffer and releases its contents to
// the enclosing buffer or the channel output. Filters already ran at
// write time, so release cannot fail an assertion.
func (ch *Channel) ReleaseBuffer() error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	n := len(ch.bufs)
	if n == 0 {
		return ErrNoBuffer
	}
	buf := ch.bufs[n-1]
	ch.bufs = ch.bufs[:n-1]
	data := buf.String()
	if n-1 > 0 {
		ch.bufs[n-2].Append(data)
		return nil
	}
	return ch.emit(data)
}

// DiscardBuffer closes the innermost buffer and drops its contents — the
// catch-block path of §5.5, used when HTML generation inside a try block
// failed an assertion and alternate output will be sent instead.
func (ch *Channel) DiscardBuffer() error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	n := len(ch.bufs)
	if n == 0 {
		return ErrNoBuffer
	}
	dropped := ch.bufs[n-1].Len()
	ch.bufs = ch.bufs[:n-1]
	ch.writeOff -= int64(dropped)
	return nil
}

// BufferDepth returns the number of open output buffers.
func (ch *Channel) BufferDepth() int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return len(ch.bufs)
}
