package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestPolicySetBasics(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}

	var nilSet *PolicySet
	if nilSet.Len() != 0 || !nilSet.IsEmpty() || nilSet.Contains(p1) {
		t.Error("nil set should behave as empty")
	}
	if nilSet.Policies() != nil {
		t.Error("nil set Policies() should be nil")
	}

	s := NewPolicySet(p1, p2, p1, nil)
	if s.Len() != 2 {
		t.Errorf("len = %d, want 2 (dedupe + drop nil)", s.Len())
	}
	if !s.Contains(p1) || !s.Contains(p2) {
		t.Error("missing members")
	}
	if NewPolicySet() != EmptySet {
		t.Error("empty construction should return the canonical empty set")
	}
}

func TestPolicySetAddRemoveImmutability(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	s1 := NewPolicySet(p1)
	s2 := s1.Add(p2)
	if s1.Len() != 1 || s2.Len() != 2 {
		t.Error("Add must not mutate the receiver")
	}
	if s2.Add(p2) != s2 {
		t.Error("adding an existing member should return the receiver")
	}
	s3 := s2.Remove(p1)
	if s2.Len() != 2 || s3.Len() != 1 || s3.Contains(p1) {
		t.Error("Remove must not mutate the receiver")
	}
	if s3.Remove(p1) != s3 {
		t.Error("removing an absent member should return the receiver")
	}
	if !s3.Remove(p2).IsEmpty() {
		t.Error("removing the last member should yield empty")
	}
}

func TestPolicySetIdentitySemantics(t *testing.T) {
	// Two distinct objects with identical fields are different policies.
	a := &allowPolicy{Name: "same"}
	b := &allowPolicy{Name: "same"}
	s := NewPolicySet(a, b)
	if s.Len() != 2 {
		t.Errorf("identity semantics: len = %d, want 2", s.Len())
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Error("both objects should be present")
	}
}

func TestPolicySetUnionEqual(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	p3 := &allowPolicy{Name: "p3"}
	a := NewPolicySet(p1, p2)
	b := NewPolicySet(p2, p3)
	u := a.Union(b)
	if u.Len() != 3 {
		t.Errorf("union len = %d", u.Len())
	}
	if !a.Union(EmptySet).Equal(a) || !EmptySet.Union(a).Equal(a) {
		t.Error("union with empty should be identity")
	}
	if !NewPolicySet(p1, p2).Equal(NewPolicySet(p2, p1)) {
		t.Error("Equal must be order-insensitive")
	}
	if NewPolicySet(p1).Equal(NewPolicySet(p2)) {
		t.Error("different sets reported equal")
	}
}

func TestPolicySetPredicates(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	d := &denyPolicy{Reason: "r"}
	s := NewPolicySet(p, d)
	isDeny := func(q Policy) bool { _, ok := q.(*denyPolicy); return ok }
	if !s.Any(isDeny) {
		t.Error("Any should find the deny policy")
	}
	if s.All(isDeny) {
		t.Error("All should fail on the mixed set")
	}
	if !EmptySet.All(isDeny) {
		t.Error("All on empty set is vacuously true")
	}
	if EmptySet.Any(isDeny) {
		t.Error("Any on empty set is false")
	}
	rem := s.RemoveIf(isDeny)
	if rem.Len() != 1 || !rem.Contains(p) {
		t.Errorf("RemoveIf = %s", rem)
	}
	if s.RemoveIf(func(Policy) bool { return false }) != s {
		t.Error("no-op RemoveIf should return the receiver")
	}
}

func TestPolicySetEachStopsOnError(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	s := NewPolicySet(p1, p2)
	count := 0
	stop := errors.New("stop")
	err := s.Each(func(Policy) error {
		count++
		return stop
	})
	if err != stop || count != 1 {
		t.Errorf("Each: err=%v count=%d", err, count)
	}
}

func TestPolicySetString(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewPolicySet(p)
	if got := s.String(); !strings.Contains(got, "allowPolicy") {
		t.Errorf("String() = %q", got)
	}
	if EmptySet.String() != "{}" {
		t.Errorf("empty String() = %q", EmptySet.String())
	}
}

func TestMergeDefaultUnion(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	out, err := MergePolicies(NewPolicySet(p1), NewPolicySet(p2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || !out.Contains(p1) || !out.Contains(p2) {
		t.Errorf("default merge should union: %s", out)
	}
}

func TestMergeIntersectionStrategy(t *testing.T) {
	a := &intersectPolicy{Tag: "a"}
	b := &intersectPolicy{Tag: "b"}
	// Both sides authentic: both survive.
	out, err := MergePolicies(NewPolicySet(a), NewPolicySet(b))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Contains(a) || !out.Contains(b) {
		t.Errorf("both authentic should survive: %s", out)
	}
	// One side unauthentic: policy dropped.
	out, err = MergePolicies(NewPolicySet(a), EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	if out.Contains(a) {
		t.Errorf("one-sided authentic should drop: %s", out)
	}
}

func TestMergeRefusal(t *testing.T) {
	r := &refusePolicy{}
	_, err := MergePolicies(NewPolicySet(r), NewPolicySet(&allowPolicy{Name: "x"}))
	if err == nil {
		t.Fatal("refusing merge should error")
	}
	ae, ok := IsAssertionError(err)
	if !ok || ae.Op != "merge" {
		t.Errorf("error should be a merge AssertionError: %v", err)
	}
	// Refusal on the right side too.
	if _, err := MergePolicies(EmptySet.Add(&allowPolicy{Name: "x"}), NewPolicySet(r)); err == nil {
		t.Fatal("right-side refusal should error")
	}
}

func TestMergeEmptyBothSides(t *testing.T) {
	out, err := MergePolicies(EmptySet, nil)
	if err != nil || !out.IsEmpty() {
		t.Errorf("empty merge = %s, %v", out, err)
	}
}

func TestQuickUnionCommutative(t *testing.T) {
	pool := []Policy{
		&allowPolicy{Name: "A"}, &allowPolicy{Name: "B"},
		&allowPolicy{Name: "C"}, &allowPolicy{Name: "D"},
		&allowPolicy{Name: "E"},
	}
	pick := func(mask uint8) *PolicySet {
		s := EmptySet
		for i, p := range pool {
			if mask&(1<<i) != 0 {
				s = s.Add(p)
			}
		}
		return s
	}
	f := func(m1, m2 uint8) bool {
		a, b := pick(m1), pick(m2)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionAssociativeIdempotent(t *testing.T) {
	pool := []Policy{
		&allowPolicy{Name: "A"}, &allowPolicy{Name: "B"},
		&allowPolicy{Name: "C"}, &allowPolicy{Name: "D"},
	}
	pick := func(mask uint8) *PolicySet {
		s := EmptySet
		for i, p := range pool {
			if mask&(1<<i) != 0 {
				s = s.Add(p)
			}
		}
		return s
	}
	f := func(m1, m2, m3 uint8) bool {
		a, b, c := pick(m1), pick(m2), pick(m3)
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		return a.Union(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDefaultMergeMatchesUnion(t *testing.T) {
	pool := []Policy{
		&allowPolicy{Name: "A"}, &allowPolicy{Name: "B"},
		&allowPolicy{Name: "C"},
	}
	pick := func(mask uint8) *PolicySet {
		s := EmptySet
		for i, p := range pool {
			if mask&(1<<i) != 0 {
				s = s.Add(p)
			}
		}
		return s
	}
	f := func(m1, m2 uint8) bool {
		a, b := pick(m1), pick(m2)
		out, err := MergePolicies(a, b)
		return err == nil && out.Equal(a.Union(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamePolicyUncomparable(t *testing.T) {
	// Value (non-pointer) policies with uncomparable fields must not panic.
	type sliceHolder struct{ ACL []string }
	_ = sliceHolder{}
	// samePolicy on different types.
	if samePolicy(&allowPolicy{}, &denyPolicy{}) {
		t.Error("different types are never the same")
	}
	if !samePolicy(nil, nil) {
		t.Error("nil == nil")
	}
	if samePolicy(&allowPolicy{}, nil) {
		t.Error("nil vs non-nil")
	}
}
