package core

import (
	"testing"
	"testing/quick"
)

func TestIntBasics(t *testing.T) {
	n := NewInt(5)
	if n.Value() != 5 || n.IsTainted() || !n.Policies().IsEmpty() {
		t.Error("fresh int wrong")
	}
	p := &allowPolicy{Name: "p"}
	m := n.WithPolicy(p)
	if !m.IsTainted() || !m.Policies().Contains(p) {
		t.Error("WithPolicy failed")
	}
	if m.WithoutPolicy(p).IsTainted() {
		t.Error("WithoutPolicy failed")
	}
	if n.IsTainted() {
		t.Error("WithPolicy must not mutate receiver")
	}
}

func TestIntArithmeticMergesUnion(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	a := NewIntPolicy(10, p1)
	b := NewIntPolicy(4, p2)
	for _, tc := range []struct {
		name string
		f    func() (Int, error)
		want int64
	}{
		{"add", func() (Int, error) { return a.Add(b) }, 14},
		{"sub", func() (Int, error) { return a.Sub(b) }, 6},
		{"mul", func() (Int, error) { return a.Mul(b) }, 40},
		{"div", func() (Int, error) { return a.Div(b) }, 2},
	} {
		got, err := tc.f()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Value() != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, got.Value(), tc.want)
		}
		if !got.Policies().Contains(p1) || !got.Policies().Contains(p2) {
			t.Errorf("%s: policies = %s", tc.name, got.Policies())
		}
	}
}

func TestIntArithmeticIntersection(t *testing.T) {
	auth := &intersectPolicy{Tag: "authentic"}
	a := NewIntPolicy(1, auth)
	b := NewInt(2)
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Policies().Contains(auth) {
		t.Error("intersection policy should not survive merge with unlabelled data")
	}
	both, err := a.Add(NewIntPolicy(2, &intersectPolicy{Tag: "b"}))
	if err != nil {
		t.Fatal(err)
	}
	if both.Policies().Len() != 2 {
		t.Errorf("both authentic: %s", both.Policies())
	}
}

func TestIntMergeRefusalAborts(t *testing.T) {
	r := &refusePolicy{}
	if _, err := NewIntPolicy(1, r).Add(NewIntPolicy(2, &allowPolicy{Name: "x"})); err == nil {
		t.Fatal("merge refusal must abort arithmetic")
	}
}

func TestIntToString(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	s := NewIntPolicy(-123, p).ToString()
	if s.Raw() != "-123" {
		t.Errorf("raw = %q", s.Raw())
	}
	if !s.HasPolicyEverywhere(func(q Policy) bool { return q == p }) {
		t.Error("every digit should carry the policy")
	}
	if NewInt(7).ToString().IsTainted() {
		t.Error("untainted int renders untainted string")
	}
}

func TestChecksumMergesAllBytePolicies(t *testing.T) {
	p1 := &allowPolicy{Name: "p1"}
	p2 := &allowPolicy{Name: "p2"}
	s := Concat(NewStringPolicy("ab", p1), NewStringPolicy("cd", p2))
	sum, err := Checksum(s)
	if err != nil {
		t.Fatal(err)
	}
	want := int64('a' + 'b' + 'c' + 'd')
	if sum.Value() != want {
		t.Errorf("checksum = %d, want %d", sum.Value(), want)
	}
	if !sum.Policies().Contains(p1) || !sum.Policies().Contains(p2) {
		t.Errorf("checksum policies = %s", sum.Policies())
	}
}

func TestChecksumRefusal(t *testing.T) {
	s := Concat(NewStringPolicy("a", &refusePolicy{}), NewStringPolicy("b", &allowPolicy{Name: "x"}))
	if _, err := Checksum(s); err == nil {
		t.Fatal("checksum over refusing policy must fail")
	}
}

func TestQuickIntAddCommutesValue(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	f := func(a, b int32) bool {
		x := NewIntPolicy(int64(a), p)
		y := NewInt(int64(b))
		s1, err1 := x.Add(y)
		s2, err2 := y.Add(x)
		if err1 != nil || err2 != nil {
			return false
		}
		return s1.Value() == s2.Value() && s1.Policies().Equal(s2.Policies())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickToStringRoundTrip(t *testing.T) {
	p := &allowPolicy{Name: "p"}
	f := func(v int32) bool {
		n := NewIntPolicy(int64(v), p)
		back, err := n.ToString().ToInt()
		if err != nil {
			return false
		}
		return back.Value() == int64(v) && back.Policies().Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
