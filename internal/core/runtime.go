package core

import (
	"sync"
	"sync/atomic"
)

// Runtime is the RESIN language runtime state: it owns the default
// data-flow boundary around the application (§3.2.1), the tracking switch
// used by the evaluation's "unmodified interpreter" baseline, and
// violation statistics.
//
// One Runtime corresponds to one interpreter instance in the paper; the
// substrates (VFS, SQL database, HTTP server, mailer, script interpreter)
// each take a *Runtime and register their boundary channels with it.
type Runtime struct {
	tracking atomic.Bool

	mu       sync.Mutex
	channels map[string]*Channel

	violations atomic.Int64
	checks     atomic.Int64
}

// NewRuntime returns a runtime with data tracking enabled.
func NewRuntime() *Runtime {
	rt := &Runtime{channels: make(map[string]*Channel)}
	rt.tracking.Store(true)
	return rt
}

// NewUntrackedRuntime returns a runtime with data tracking disabled — the
// "unmodified PHP interpreter" baseline of §7: policies are never attached
// and filters never run, while application code is unchanged.
func NewUntrackedRuntime() *Runtime {
	return &Runtime{channels: make(map[string]*Channel)}
}

// Tracking reports whether data tracking and filter interposition are
// enabled.
func (rt *Runtime) Tracking() bool {
	if rt == nil {
		return false
	}
	return rt.tracking.Load()
}

// SetTracking toggles data tracking at runtime (used by benchmarks to
// compare modes over identical application code).
func (rt *Runtime) SetTracking(on bool) { rt.tracking.Store(on) }

// PolicyAdd attaches policies to data if tracking is enabled; with
// tracking disabled it returns the data unchanged, so baseline runs carry
// no policies anywhere. This is the paper's policy_add entry point.
func (rt *Runtime) PolicyAdd(data String, ps ...Policy) String {
	if !rt.Tracking() {
		return data
	}
	return data.WithPolicy(ps...)
}

// PolicyAddRange attaches policies to a byte range of data under the same
// tracking rule as PolicyAdd.
func (rt *Runtime) PolicyAddRange(data String, start, end int, ps ...Policy) String {
	if !rt.Tracking() {
		return data
	}
	return data.WithPolicyRange(start, end, ps...)
}

// PolicyRemove removes policy objects from data (the paper's
// policy_remove).
func (rt *Runtime) PolicyRemove(data String, ps ...Policy) String {
	if !rt.Tracking() {
		return data
	}
	return data.WithoutPolicy(ps...)
}

// PolicyGet returns the union of policies on data (the paper's
// policy_get).
func (rt *Runtime) PolicyGet(data String) []Policy { return data.Policies().Policies() }

// NewChannel creates a channel bound to this runtime with the default
// export-check filter installed — the default boundary of §3.2.1. Callers
// add context entries and extra filters as needed.
func (rt *Runtime) NewChannel(kind string) *Channel {
	return NewChannel(rt, kind, ExportCheckFilter{})
}

// NewBareChannel creates a channel bound to this runtime with no filters;
// substrates that install their own complete chains use this.
func (rt *Runtime) NewBareChannel(kind string) *Channel {
	return NewChannel(rt, kind)
}

// RegisterChannel names a channel so programs can look up boundaries they
// did not create (the paper's applications reach channels via handles like
// sock.__filter; named registration is the equivalent for singletons such
// as "the interpreter's import channel").
func (rt *Runtime) RegisterChannel(name string, ch *Channel) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.channels[name] = ch
}

// Channel returns the channel registered under name, or nil.
func (rt *Runtime) Channel(name string) *Channel {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.channels[name]
}

// noteViolation counts an assertion failure for diagnostics.
func (rt *Runtime) noteViolation(err error) {
	if rt == nil {
		return
	}
	if _, ok := IsAssertionError(err); ok {
		rt.violations.Add(1)
	}
}

// noteCheck counts a boundary check (microbenchmark instrumentation).
func (rt *Runtime) noteCheck() {
	if rt != nil {
		rt.checks.Add(1)
	}
}

// Violations returns the number of assertion failures observed.
func (rt *Runtime) Violations() int64 { return rt.violations.Load() }
