package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resin/internal/core"
	"resin/internal/sqldb"
)

// Config tunes a Server. Zero values select the defaults.
type Config struct {
	// MaxConns caps concurrent connections (default 2048); connections
	// over the cap are refused with a framed error before any query
	// state exists.
	MaxConns int
	// IdleTimeout bounds the wait for the next request on an idle
	// connection (default 5m). ReadTimeout bounds reading one request's
	// frame once its header arrives and WriteTimeout bounds writing one
	// response (default 30s each). A client context deadline shorter
	// than these wins on the client side — the client stops waiting and
	// abandons the connection.
	IdleTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// ReadOnly refuses everything but SELECTs and status/replication
	// requests — the follower serving mode. NewFollowerServer forces it.
	ReadOnly bool
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 2048
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// shipChunk bounds one shipped log chunk; comfortably under MaxFrame
// with the chunk header.
const shipChunk = 1 << 20

// shipHeartbeat is the idle cadence of empty log chunks, which carry
// the primary's current log size so followers can bound their
// staleness even when nothing is being written.
const shipHeartbeat = time.Second

// Server serves a sqldb.DB over the wire protocol: queries and
// prepared statements per connection, transactions (one per
// connection), status, and — on a primary with a WAL — the replication
// stream. Connections are independent; per-connection state is one
// session (open statements, the open transaction).
type Server struct {
	cfg    Config
	src    func() *sqldb.DB
	status func() Status

	mu       sync.Mutex
	lis      net.Listener
	sessions map[*session]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup
}

// NewServer serves db as a primary.
func NewServer(db *sqldb.DB, cfg Config) *Server {
	status := func() Status {
		st := Status{Role: "primary", Frontier: db.Frontier()}
		if epoch, size, err := db.WALStatus(); err == nil {
			st.Epoch, st.WALSize = epoch, size
			st.Applied, st.Received, st.PrimarySize = size, size, size
		}
		return st
	}
	return &Server{cfg: cfg.withDefaults(), src: func() *sqldb.DB { return db }, status: status, sessions: make(map[*session]struct{})}
}

// NewFollowerServer serves a replica's database read-only. The database
// is resolved per request, so a diverged-and-resynced replica serves
// its fresh state without restarting the server (open prepared
// statements from before the resync keep reading the pre-resync state;
// clients should reconnect after ErrDiverged).
func NewFollowerServer(r *Replica, cfg Config) *Server {
	cfg = cfg.withDefaults()
	cfg.ReadOnly = true
	return &Server{cfg: cfg, src: r.DB, status: r.Status, sessions: make(map[*session]struct{})}
}

// Serve accepts connections on lis until Shutdown (which returns nil
// here) or a permanent accept error.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	sem := make(chan struct{}, s.cfg.MaxConns)
	for {
		nc, err := lis.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		select {
		case sem <- struct{}{}:
		default:
			// Over the connection cap: refuse after the preamble so the
			// client gets a diagnosable framed error, not a reset.
			go refuseConn(nc, s.cfg.WriteTimeout, "server at connection limit")
			continue
		}
		if s.draining.Load() {
			<-sem
			go refuseConn(nc, s.cfg.WriteTimeout, "server is draining")
			continue
		}
		sess := &session{srv: s, nc: nc}
		s.mu.Lock()
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.sessions, sess)
				s.mu.Unlock()
				<-sem
				s.wg.Done()
			}()
			sess.run()
		}()
	}
}

func refuseConn(nc net.Conn, timeout time.Duration, msg string) {
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
	if expectPreamble(nc) != nil {
		return
	}
	if sendPreamble(nc) != nil {
		return
	}
	writeFrame(nc, errorPayload(codeDraining, msg)) //nolint:errcheck
}

// Shutdown drains the server: stop accepting, let in-flight requests
// finish, close idle connections immediately and busy ones as they
// complete their current request. Connections still open when ctx
// expires are closed forcibly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close() //nolint:errcheck
	}
	for sess := range s.sessions {
		if !sess.busy.Load() {
			sess.nc.Close() //nolint:errcheck
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.nc.Close() //nolint:errcheck
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// session is one connection's server-side state.
type session struct {
	srv  *Server
	nc   net.Conn
	busy atomic.Bool

	stmts  map[uint64]*sqldb.Stmt
	nextID uint64
	tx     *sqldb.Tx
}

func (s *session) run() {
	defer s.nc.Close() //nolint:errcheck
	defer func() {
		if s.tx != nil {
			s.tx.Rollback() //nolint:errcheck
		}
	}()
	cfg := s.srv.cfg
	s.nc.SetDeadline(time.Now().Add(cfg.ReadTimeout)) //nolint:errcheck
	if err := expectPreamble(s.nc); err != nil {
		return
	}
	if err := sendPreamble(s.nc); err != nil {
		return
	}
	for {
		s.nc.SetReadDeadline(time.Now().Add(cfg.IdleTimeout)) //nolint:errcheck
		req, err := readFrame(s.nc)
		if err != nil {
			return // disconnect, idle timeout, or an unsyncable stream
		}
		s.busy.Store(true)
		if s.srv.draining.Load() {
			s.reply(errorPayload(codeDraining, "server is draining"))
			s.busy.Store(false)
			return
		}
		resp, ship := s.dispatch(req)
		if ship != nil {
			// The connection becomes a one-way replication stream; ship
			// never returns while the connection and log are healthy.
			s.busy.Store(false)
			ship()
			return
		}
		ok := s.reply(resp)
		s.busy.Store(false)
		if !ok {
			return
		}
	}
}

// reply writes one response frame; false means the connection is gone.
func (s *session) reply(payload []byte) bool {
	s.nc.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout)) //nolint:errcheck
	if err := writeFrame(s.nc, payload); err == nil {
		return true
	}
	// An oversized result must fail the request, not the connection:
	// the frame was refused before any byte hit the socket.
	if pay := payload; len(pay) > MaxFrame {
		return writeFrame(s.nc, errorPayload(codeTooLarge,
			fmt.Sprintf("result frame of %d bytes exceeds the %d-byte frame limit", len(pay), MaxFrame))) == nil
	}
	return false
}

// dispatch handles one request and returns the response payload, or a
// ship loop to hand the connection to.
func (s *session) dispatch(req []byte) (resp []byte, ship func()) {
	d := &decoder{data: req, off: 1}
	fail := func(err error) ([]byte, func()) {
		return errorPayload(errCode(err), err.Error()), nil
	}
	db := s.srv.src()
	switch req[0] {
	case msgQuery:
		q, err := d.readTracked()
		if err != nil {
			return fail(err)
		}
		args, err := d.readArgs()
		if err != nil {
			return fail(err)
		}
		res, err := s.execute(db, q, args)
		if err != nil {
			return fail(err)
		}
		p, err := resultPayload(res)
		if err != nil {
			return fail(err)
		}
		return p, nil

	case msgPrepare:
		q, err := d.readTracked()
		if err != nil {
			return fail(err)
		}
		st, err := s.prepare(db, q)
		if err != nil {
			return fail(err)
		}
		if s.stmts == nil {
			s.stmts = make(map[uint64]*sqldb.Stmt)
		}
		s.nextID++
		id := s.nextID
		s.stmts[id] = st
		p := []byte{msgPrepared}
		p = binary.AppendUvarint(p, id)
		p = binary.AppendUvarint(p, uint64(st.NumArgs()))
		return p, nil

	case msgExec:
		id, err := d.uvarint()
		if err != nil {
			return fail(err)
		}
		args, err := d.readArgs()
		if err != nil {
			return fail(err)
		}
		st := s.stmts[id]
		if st == nil {
			return fail(fmt.Errorf("wire: unknown statement id %d", id))
		}
		if s.srv.cfg.ReadOnly && !st.ReadOnly() {
			return fail(fmt.Errorf("%w: statement mutates", ErrReadOnlyReplica))
		}
		res, err := st.Query(args...)
		if err != nil {
			return fail(err)
		}
		p, err := resultPayload(res)
		if err != nil {
			return fail(err)
		}
		return p, nil

	case msgCloseStmt:
		id, err := d.uvarint()
		if err != nil {
			return fail(err)
		}
		delete(s.stmts, id)
		return []byte{msgAck}, nil

	case msgBegin:
		if s.srv.cfg.ReadOnly {
			return fail(fmt.Errorf("%w: no transactions on a replica", ErrReadOnlyReplica))
		}
		if s.tx != nil {
			return fail(errors.New("wire: transaction already open on this connection"))
		}
		s.tx = db.Begin()
		return []byte{msgAck}, nil

	case msgCommit:
		if s.tx == nil {
			return fail(errors.New("wire: no open transaction"))
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Commit(); err != nil {
			return fail(err)
		}
		return []byte{msgAck}, nil

	case msgRollback:
		if s.tx == nil {
			return fail(errors.New("wire: no open transaction"))
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Rollback(); err != nil {
			return fail(err)
		}
		return []byte{msgAck}, nil

	case msgStatus:
		return statusPayload(s.srv.status()), nil

	case msgHandshake:
		size, err := d.uvarint()
		if err != nil {
			return fail(err)
		}
		if len(d.data)-d.off != 4 {
			return fail(fmt.Errorf("%w: bad handshake CRC", ErrFrameCorrupt))
		}
		crc := binary.LittleEndian.Uint32(d.data[d.off:])
		if err := db.VerifyWALPrefix(int64(size), crc); err != nil {
			return fail(err)
		}
		return nil, func() { s.serveShip(db, int64(size)) }

	default:
		return errorPayload(codeBadRequest, fmt.Sprintf("wire: unknown request 0x%02x", req[0])), nil
	}
}

// execute runs a one-shot query through the prepared-statement layer —
// one compile against the plan cache, uniform named/positional binding,
// and the replica read-only check in one place.
func (s *session) execute(db *sqldb.DB, q core.String, args []any) (*sqldb.Result, error) {
	st, err := s.prepare(db, q)
	if err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// prepare compiles query text against the session's transaction (when
// one is open) or the database, enforcing the replica read-only rule.
func (s *session) prepare(db *sqldb.DB, q core.String) (*sqldb.Stmt, error) {
	var st *sqldb.Stmt
	var err error
	if s.tx != nil {
		st, err = s.tx.Prepare(q)
	} else {
		st, err = db.Prepare(q)
	}
	if err != nil {
		return nil, err
	}
	if s.srv.cfg.ReadOnly && !st.ReadOnly() {
		return nil, fmt.Errorf("%w: statement mutates", ErrReadOnlyReplica)
	}
	return st, nil
}

// serveShip turns the connection into the replication stream: msgShip-
// Accept, then msgLogChunk frames from offset `off` of db's log as
// bytes appear, with empty heartbeat chunks (carrying the current log
// size) every shipHeartbeat while idle. The loop ends with a framed
// error when the log's epoch changes (compaction rewrote it — offsets
// are void, the follower must re-handshake and will typically need a
// full resync) or the server drains, and silently when the connection
// or log dies.
func (s *session) serveShip(db *sqldb.DB, off int64) {
	epoch0, size, err := db.WALStatus()
	if err != nil {
		s.reply(errorPayload(errCode(err), err.Error()))
		return
	}
	notify, err := db.WALNotify()
	if err != nil {
		s.reply(errorPayload(errCode(err), err.Error()))
		return
	}
	accept := []byte{msgShipAccept}
	accept = binary.AppendUvarint(accept, epoch0)
	accept = binary.AppendUvarint(accept, uint64(size))
	if !s.reply(accept) {
		return
	}
	ticker := time.NewTicker(shipHeartbeat)
	defer ticker.Stop()
	for {
		if s.srv.draining.Load() {
			s.reply(errorPayload(codeDraining, "server is draining"))
			return
		}
		data, epoch, err := db.ReadWAL(off, shipChunk)
		if err != nil || epoch != epoch0 {
			if err == nil {
				err = fmt.Errorf("%w: log epoch changed (compaction); re-handshake", sqldb.ErrShipDiverged)
			}
			s.reply(errorPayload(errCode(err), err.Error()))
			return
		}
		_, size, _ := db.WALStatus()
		if len(data) > 0 {
			if !s.reply(logChunkPayload(off, epoch, size, data)) {
				return
			}
			off += int64(len(data))
			continue
		}
		select {
		case <-notify:
		case <-ticker.C:
			// Idle heartbeat: no bytes, but the follower learns the
			// primary's size (its staleness bound) and the connection
			// proves itself alive.
			if !s.reply(logChunkPayload(off, epoch, size, nil)) {
				return
			}
		}
	}
}

func logChunkPayload(off int64, epoch uint64, primarySize int64, data []byte) []byte {
	p := []byte{msgLogChunk}
	p = binary.AppendUvarint(p, uint64(off))
	p = binary.AppendUvarint(p, epoch)
	p = binary.AppendUvarint(p, uint64(primarySize))
	p = binary.AppendUvarint(p, uint64(len(data)))
	return append(p, data...)
}
