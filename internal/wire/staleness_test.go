package wire

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

import "resin/internal/core"

// TestReplicaStalenessNonNegativeAcrossResync is the regression test for
// the negative-staleness window: resync() stores primarySize=0 while the
// follower's applied offset is still the pre-resync value, so a naive
// PrimarySize-Applied subtraction goes negative until the next size
// report. A sampler hammers Staleness() and Status() concurrently while
// a primary compaction (epoch bump) forces the replica through a full
// resync; every sample must be non-negative and internally consistent.
func TestReplicaStalenessNonNegativeAcrossResync(t *testing.T) {
	rt := core.NewRuntime()
	db, addr := startPrimary(t, rt)
	r, _ := startReplica(t, rt, addr, filepath.Join(t.TempDir(), "replica.wal"))

	pc := dialT(t, addr)
	if _, err := pc.QueryRaw("CREATE TABLE t (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := pc.QueryRaw("INSERT INTO t (a, b) VALUES (?, ?)", i, fmt.Sprintf("row %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, r, db)

	// Sample staleness continuously through the resync window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var negStaleness, negStatus atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if lag := r.Staleness(); lag < 0 {
				negStaleness.Store(lag)
			}
			if st := r.Status(); st.PrimarySize < st.Applied {
				negStatus.Store(st.PrimarySize - st.Applied)
			}
		}
	}()

	// Force the resync: deletes shrink what the log replays to, then a
	// primary compaction rewrites it under a new epoch — the follower's
	// byte offset no longer exists and byte shipping cannot reconcile.
	if _, err := pc.QueryRaw("DELETE FROM t WHERE a >= 20"); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 120; i++ {
		if _, err := pc.QueryRaw("INSERT INTO t (a, b) VALUES (?, ?)", i, fmt.Sprintf("row %d", i)); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for r.Resyncs() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Resyncs() == 0 {
		t.Fatal("primary compaction never forced a resync; the test exercises nothing")
	}
	// waitCaughtUp compares frontiers, but a replica rebuilt from the
	// compacted log replays collapsed history under different version
	// numbers; equality of byte offsets plus the row count is the
	// post-resync catch-up criterion.
	for {
		_, size, err := db.WALStatus()
		if err != nil {
			t.Fatal(err)
		}
		if applied, _ := r.Follower().Offsets(); applied == size {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never applied the rebuilt log")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := r.DB().QueryRaw("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 40 {
		t.Fatalf("post-resync replica has %d rows, want 40", res.Len())
	}

	close(stop)
	wg.Wait()
	if v := negStaleness.Load(); v < 0 {
		t.Fatalf("Staleness() went negative across resync: %d", v)
	}
	if v := negStatus.Load(); v < 0 {
		t.Fatalf("Status() reported PrimarySize %d below Applied (diff %d) across resync", v, v)
	}
	if lag := r.Staleness(); lag != 0 {
		t.Fatalf("caught-up replica reports staleness %d, want 0", lag)
	}
}
