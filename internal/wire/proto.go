package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"resin/internal/core"
	"resin/internal/sqldb"
)

// Message tags. A payload is one tag byte followed by the body
// documented in docs/WIRE.md §2–§3.
const (
	// client → server
	msgQuery     = 'Q' // tracked query text + args: one-shot execute
	msgPrepare   = 'P' // tracked query text → msgPrepared
	msgExec      = 'E' // stmt id + args: execute a prepared statement
	msgCloseStmt = 'X' // stmt id: release a prepared statement
	msgBegin     = 'B' // open the connection's transaction
	msgCommit    = 'C' // commit it
	msgRollback  = 'R' // roll it back
	msgStatus    = 'S' // → msgStatusReply
	msgHandshake = 'W' // follower position (size + CRC) → msgShipAccept

	// server → client
	msgResult      = 'r' // affected + columns + rows with annotations
	msgError       = 'e' // code byte + message text
	msgPrepared    = 'p' // stmt id + placeholder count
	msgAck         = 'k' // success with no result (tx ops, close)
	msgStatusReply = 's' // role + frontier + log position
	msgShipAccept  = 'w' // epoch + primary log size; 'L' chunks follow
	msgLogChunk    = 'L' // offset + epoch + primary size + raw log bytes
)

// Error codes carried by msgError. The code survives the wire so
// clients can errors.Is against the matching sentinel instead of
// string-matching messages.
const (
	codeGeneric    = 0x01
	codeReadOnly   = 0x02
	codeBehind     = 0x03
	codeDiverged   = 0x04
	codeTooLarge   = 0x05
	codeDraining   = 0x06
	codeBadRequest = 0x07
)

// Typed error sentinels, matched by errors.Is on *RemoteError.
var (
	// ErrReadOnlyReplica rejects writes (and transactions) on a
	// follower: replicas serve reads at their applied frontier only.
	ErrReadOnlyReplica = errors.New("wire: replica is read-only")
	// ErrBehind is the resumable replication mismatch: the stream needs
	// to restart from the follower's actual received offset.
	ErrBehind = errors.New("wire: follower is behind the shipped offset")
	// ErrDiverged is the non-resumable replication mismatch: the
	// follower's log is not a byte prefix of the primary's (it forked,
	// or the primary compacted) and it must resync from scratch.
	ErrDiverged = errors.New("wire: follower log diverged from the primary")
	// ErrDraining rejects new requests while the server shuts down.
	ErrDraining = errors.New("wire: server is draining")
)

// RemoteError is a server-reported failure, carrying the wire error
// code and the server's message.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string { return "wire: server error: " + e.Msg }

// Is maps wire error codes to their sentinels (and ErrFrameTooLarge to
// the oversize code), so errors.Is works across the connection.
func (e *RemoteError) Is(target error) bool {
	switch target {
	case ErrReadOnlyReplica:
		return e.Code == codeReadOnly
	case ErrBehind:
		return e.Code == codeBehind
	case ErrDiverged:
		return e.Code == codeDiverged
	case ErrFrameTooLarge:
		return e.Code == codeTooLarge
	case ErrDraining:
		return e.Code == codeDraining
	}
	return false
}

// errCode classifies a server-side error for the wire.
func errCode(err error) byte {
	switch {
	case errors.Is(err, ErrReadOnlyReplica):
		return codeReadOnly
	case errors.Is(err, sqldb.ErrShipBehind) || errors.Is(err, ErrBehind):
		return codeBehind
	case errors.Is(err, sqldb.ErrShipDiverged) || errors.Is(err, ErrDiverged):
		return codeDiverged
	case errors.Is(err, ErrFrameTooLarge):
		return codeTooLarge
	case errors.Is(err, ErrDraining):
		return codeDraining
	}
	return codeGeneric
}

// errorPayload frames an error message.
func errorPayload(code byte, msg string) []byte {
	p := []byte{msgError, code}
	p = binary.AppendUvarint(p, uint64(len(msg)))
	return append(p, msg...)
}

// decoder walks one message payload.
type decoder struct {
	data []byte
	off  int
}

var errTruncated = fmt.Errorf("%w: truncated message", ErrFrameCorrupt)

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.data) {
		return 0, errTruncated
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.off) {
		return nil, errTruncated
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *decoder) done() error {
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrameCorrupt, len(d.data)-d.off)
	}
	return nil
}

// Tracked-value codec. THE serialization of a tracked string is its raw
// bytes plus the core.EncodeSpans annotation — the same canonical bytes
// internal/remote puts in its messages, so policy identity cannot drift
// between the in-process and network paths. A tracked integer rides as
// its value plus the annotation of its digit string (ToString renders
// the digits carrying the integer's whole-value policy set).

// appendTracked encodes a tracked string: uvarint raw length + raw
// bytes, uvarint annotation length + annotation bytes (empty when
// untainted).
func appendTracked(p []byte, s core.String) ([]byte, error) {
	ann, err := core.EncodeSpans(s)
	if err != nil {
		return nil, fmt.Errorf("wire: encode policy spans: %w", err)
	}
	if len(ann) > 0 {
		core.LineageRecordValue(s, "wire-send", "wire.frame")
	}
	p = binary.AppendUvarint(p, uint64(len(s.Raw())))
	p = append(p, s.Raw()...)
	p = binary.AppendUvarint(p, uint64(len(ann)))
	return append(p, ann...), nil
}

// readTracked decodes a tracked string, re-interning its policy sets.
func (d *decoder) readTracked() (core.String, error) {
	raw, err := d.bytes()
	if err != nil {
		return core.String{}, err
	}
	ann, err := d.bytes()
	if err != nil {
		return core.String{}, err
	}
	if len(ann) == 0 {
		return core.NewString(string(raw)), nil
	}
	s, err := core.DecodeSpans(string(raw), ann)
	if err != nil {
		return core.String{}, fmt.Errorf("wire: decode policy spans: %w", err)
	}
	core.LineageRecordValue(s, "wire-recv", "wire.frame")
	return s, nil
}

// Argument codec. Each argument is uvarint name length + name bytes
// (length 0 = positional), then a value: 'N' NULL, 'I' zigzag-varint +
// tracked digit annotation, 'T' tracked string.
const (
	valNull = 'N'
	valInt  = 'I'
	valText = 'T'
)

// appendArg encodes one bound argument. Plain Go values are normalized
// to tracked (untainted) values client-side, so the server sees one
// representation.
func appendArg(p []byte, a any) ([]byte, error) {
	name := ""
	if na, ok := a.(sqldb.NamedArg); ok {
		name = na.Name
		a = na.Value
	}
	p = binary.AppendUvarint(p, uint64(len(name)))
	p = append(p, name...)
	switch v := a.(type) {
	case nil:
		return append(p, valNull), nil
	case core.String:
		p = append(p, valText)
		return appendTracked(p, v)
	case core.Int:
		p = append(p, valInt)
		p = binary.AppendVarint(p, v.Value())
		ann, err := core.EncodeSpans(v.ToString())
		if err != nil {
			return nil, fmt.Errorf("wire: encode policy spans: %w", err)
		}
		if len(ann) > 0 {
			core.LineageRecord(v.Policies(), "wire-send", "wire.frame")
		}
		p = binary.AppendUvarint(p, uint64(len(ann)))
		return append(p, ann...), nil
	case string:
		p = append(p, valText)
		return appendTracked(p, core.NewString(v))
	case []byte:
		p = append(p, valText)
		return appendTracked(p, core.NewString(string(v)))
	case int:
		return appendArg0Int(p, int64(v)), nil
	case int64:
		return appendArg0Int(p, v), nil
	case int32:
		return appendArg0Int(p, int64(v)), nil
	case int16:
		return appendArg0Int(p, int64(v)), nil
	case int8:
		return appendArg0Int(p, int64(v)), nil
	case uint8:
		return appendArg0Int(p, int64(v)), nil
	case uint16:
		return appendArg0Int(p, int64(v)), nil
	case uint32:
		return appendArg0Int(p, int64(v)), nil
	case bool:
		if v {
			return appendArg0Int(p, 1), nil
		}
		return appendArg0Int(p, 0), nil
	default:
		return nil, fmt.Errorf("wire: cannot bind %T (want core.String, core.Int, string, []byte, integer, bool, or nil)", a)
	}
}

func appendArg0Int(p []byte, v int64) []byte {
	p = append(p, valInt)
	p = binary.AppendVarint(p, v)
	return binary.AppendUvarint(p, 0)
}

// readArg decodes one bound argument into the value the sqldb layer
// binds: nil, core.String, core.Int, or sqldb.NamedArg wrapping one.
func (d *decoder) readArg() (any, error) {
	nameB, err := d.bytes()
	if err != nil {
		return nil, err
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	var v any
	switch tag {
	case valNull:
		v = nil
	case valText:
		s, err := d.readTracked()
		if err != nil {
			return nil, err
		}
		v = s
	case valInt:
		n, err := d.varint()
		if err != nil {
			return nil, err
		}
		ann, err := d.bytes()
		if err != nil {
			return nil, err
		}
		iv, err := decodeInt(n, ann)
		if err != nil {
			return nil, err
		}
		v = iv
	default:
		return nil, fmt.Errorf("%w: unknown value tag 0x%02x", ErrFrameCorrupt, tag)
	}
	if len(nameB) > 0 {
		return sqldb.Named(string(nameB), v), nil
	}
	return v, nil
}

// decodeInt rebuilds a tracked integer from its value and digit-string
// annotation, the same way the SQL filter's makeCell does: the decoded
// digits' policy set becomes the integer's whole-value set.
func decodeInt(n int64, ann []byte) (core.Int, error) {
	iv := core.NewInt(n)
	if len(ann) == 0 {
		return iv, nil
	}
	s, err := core.DecodeSpans(iv.ToString().Raw(), ann)
	if err != nil {
		return core.Int{}, fmt.Errorf("wire: decode policy spans: %w", err)
	}
	out := iv.WithPolicy(s.Policies().Policies()...)
	core.LineageRecord(out.Policies(), "wire-recv", "wire.frame")
	return out, nil
}

// appendArgs encodes a bound-argument list.
func appendArgs(p []byte, args []any) ([]byte, error) {
	p = binary.AppendUvarint(p, uint64(len(args)))
	var err error
	for _, a := range args {
		if p, err = appendArg(p, a); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// readArgs decodes a bound-argument list.
func (d *decoder) readArgs() ([]any, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)) { // each arg is ≥ 2 bytes; cheap sanity bound
		return nil, fmt.Errorf("%w: argument count %d exceeds payload", ErrFrameCorrupt, n)
	}
	args := make([]any, 0, n)
	for i := uint64(0); i < n; i++ {
		a, err := d.readArg()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}

// Result codec: affected count, column names, then rows of cells. A
// cell is 'N', or 'I' + zigzag varint + digit annotation, or 'T' +
// tracked string — annotations byte-identical to what EncodeSpans
// produced from the in-process result cells.

// resultPayload encodes a query result.
func resultPayload(res *sqldb.Result) ([]byte, error) {
	p := []byte{msgResult}
	p = binary.AppendUvarint(p, uint64(res.Affected))
	p = binary.AppendUvarint(p, uint64(len(res.Columns)))
	for _, c := range res.Columns {
		p = binary.AppendUvarint(p, uint64(len(c)))
		p = append(p, c...)
	}
	p = binary.AppendUvarint(p, uint64(len(res.Rows)))
	var err error
	for _, row := range res.Rows {
		for _, cell := range row {
			switch {
			case cell.Null:
				p = append(p, valNull)
			case cell.IsInt:
				p = append(p, valInt)
				p = binary.AppendVarint(p, cell.Int.Value())
				var ann []byte
				if ann, err = core.EncodeSpans(cell.Int.ToString()); err != nil {
					return nil, fmt.Errorf("wire: encode policy spans: %w", err)
				}
				if len(ann) > 0 {
					core.LineageRecord(cell.Int.Policies(), "wire-send", "wire.frame")
				}
				p = binary.AppendUvarint(p, uint64(len(ann)))
				p = append(p, ann...)
			default:
				p = append(p, valText)
				if p, err = appendTracked(p, cell.Str); err != nil {
					return nil, err
				}
			}
		}
	}
	return p, nil
}

// readResult decodes a query result (the bytes after the 'r' tag).
func (d *decoder) readResult() (*sqldb.Result, error) {
	affected, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	ncols, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols > uint64(len(d.data)) {
		return nil, fmt.Errorf("%w: column count %d exceeds payload", ErrFrameCorrupt, ncols)
	}
	cols := make([]string, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		b, err := d.bytes()
		if err != nil {
			return nil, err
		}
		cols = append(cols, string(b))
	}
	nrows, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols > 0 && nrows > uint64(len(d.data))/ncols {
		return nil, fmt.Errorf("%w: row count %d exceeds payload", ErrFrameCorrupt, nrows)
	}
	rows := make([][]sqldb.Cell, 0, nrows)
	for r := uint64(0); r < nrows; r++ {
		row := make([]sqldb.Cell, ncols)
		for c := uint64(0); c < ncols; c++ {
			tag, err := d.byte()
			if err != nil {
				return nil, err
			}
			switch tag {
			case valNull:
				row[c] = sqldb.Cell{Null: true}
			case valInt:
				n, err := d.varint()
				if err != nil {
					return nil, err
				}
				ann, err := d.bytes()
				if err != nil {
					return nil, err
				}
				iv, err := decodeInt(n, ann)
				if err != nil {
					return nil, err
				}
				row[c] = sqldb.Cell{IsInt: true, Int: iv}
			case valText:
				s, err := d.readTracked()
				if err != nil {
					return nil, err
				}
				row[c] = sqldb.Cell{Str: s}
			default:
				return nil, fmt.Errorf("%w: unknown cell tag 0x%02x", ErrFrameCorrupt, tag)
			}
		}
		rows = append(rows, row)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return &sqldb.Result{Columns: cols, Rows: rows, Affected: int(affected)}, nil
}

// Status is a server's replication position, from Conn.Status.
type Status struct {
	// Role is "primary" or "follower".
	Role string
	// Frontier is the engine's applied commit version.
	Frontier uint64
	// Epoch and WALSize describe the server's own log.
	Epoch   uint64
	WALSize int64
	// Applied and Received are the follower's shipping offsets into the
	// primary's log (equal to WALSize on a primary). PrimarySize is the
	// follower's last-observed primary log size (its staleness bound:
	// PrimarySize - Applied bytes behind); equal to WALSize on a
	// primary.
	Applied     int64
	Received    int64
	PrimarySize int64
}

func statusPayload(st Status) []byte {
	role := byte('P')
	if st.Role == "follower" {
		role = 'F'
	}
	p := []byte{msgStatusReply, role}
	p = binary.AppendUvarint(p, st.Frontier)
	p = binary.AppendUvarint(p, st.Epoch)
	p = binary.AppendUvarint(p, uint64(st.WALSize))
	p = binary.AppendUvarint(p, uint64(st.Applied))
	p = binary.AppendUvarint(p, uint64(st.Received))
	p = binary.AppendUvarint(p, uint64(st.PrimarySize))
	return p
}

func (d *decoder) readStatus() (Status, error) {
	var st Status
	role, err := d.byte()
	if err != nil {
		return st, err
	}
	if role == 'F' {
		st.Role = "follower"
	} else {
		st.Role = "primary"
	}
	fields := []*uint64{&st.Frontier, &st.Epoch}
	for _, f := range fields {
		if *f, err = d.uvarint(); err != nil {
			return st, err
		}
	}
	ints := []*int64{&st.WALSize, &st.Applied, &st.Received, &st.PrimarySize}
	for _, f := range ints {
		v, err := d.uvarint()
		if err != nil {
			return st, err
		}
		*f = int64(v)
	}
	return st, d.done()
}
