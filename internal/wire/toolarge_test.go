package wire

import (
	"errors"
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/sqldb"
)

// TestServerOversizedResultFailsOnlyTheRequest pins the codeTooLarge
// contract of session.reply: a result payload above MaxFrame is refused
// before any byte hits the socket, the client surfaces a typed
// ErrFrameTooLarge without poisoning the connection, and the same
// connection serves the next query.
func TestServerOversizedResultFailsOnlyTheRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >64MiB result set")
	}
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE blobs (id INT, body TEXT)")
	ins := db.MustPrepare("INSERT INTO blobs (id, body) VALUES (?, ?)")
	// 5 × 13MiB rows: comfortably over the 64MiB frame cap as one
	// result, comfortably under it per row.
	big := core.NewString(strings.Repeat("x", 13<<20))
	for i := 0; i < 5; i++ {
		if _, err := ins.Exec(int64(i), big); err != nil {
			t.Fatal(err)
		}
	}
	addr, _ := startServer(t, db, Config{})
	c := dialT(t, addr)

	_, err := c.QueryRaw("SELECT id, body FROM blobs")
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized result: err = %v, want ErrFrameTooLarge", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("oversized result should surface as a typed *RemoteError, got %T", err)
	}
	if c.Closed() {
		t.Fatal("codeTooLarge must fail the request, not the connection")
	}

	// The same connection keeps working: a row-sized query succeeds.
	res, err := c.QueryRaw("SELECT id FROM blobs WHERE id = ?", 3)
	if err != nil {
		t.Fatalf("follow-up query on the same connection: %v", err)
	}
	if res.Len() != 1 || res.Get(0, "id").Int.Value() != 3 {
		t.Fatalf("follow-up query returned wrong rows: %d", res.Len())
	}
}
