package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"resin/internal/core"
	"resin/internal/sqldb"
)

// ErrConnClosed reports a request on a closed (or transport-broken)
// connection.
var ErrConnClosed = errors.New("wire: connection is closed")

// Conn is a client connection: one request in flight at a time
// (concurrent callers serialize on an internal mutex — open more
// connections for parallelism, as the load harness does). A transport
// or framing error poisons the connection: the request/response stream
// can no longer be trusted to be in sync, so every later call fails
// with ErrConnClosed and the caller should redial.
type Conn struct {
	mu     sync.Mutex
	nc     net.Conn
	closed bool
}

// Dial connects to a wire server.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a wire server, honoring ctx for the dial and
// the preamble exchange.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl) //nolint:errcheck
	} else {
		nc.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	}
	if err := sendPreamble(nc); err != nil {
		nc.Close()
		return nil, err
	}
	if err := expectPreamble(nc); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{}) //nolint:errcheck
	return &Conn{nc: nc}, nil
}

// Close closes the connection. Safe to call twice.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

// Closed reports whether the connection has been closed or poisoned by
// a transport error.
func (c *Conn) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// roundTrip sends one request frame and reads one response frame,
// honoring ctx: its deadline becomes the socket deadline, and its
// cancellation interrupts a blocked read or write. Server-reported
// errors (msgError) return as *RemoteError and leave the connection
// usable; transport errors poison it.
func (c *Conn) roundTrip(ctx context.Context, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConnClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		c.nc.SetDeadline(dl) //nolint:errcheck
	} else {
		c.nc.SetDeadline(time.Time{}) //nolint:errcheck
	}
	// Cancellation watcher: force a deadline in the past to interrupt
	// blocked socket calls the moment ctx is canceled.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			c.nc.SetDeadline(time.Unix(1, 0)) //nolint:errcheck
		case <-watchDone:
		}
	}()

	fail := func(err error) ([]byte, error) {
		c.closed = true
		c.nc.Close() //nolint:errcheck
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	if err := writeFrame(c.nc, payload); err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			return nil, err // refused before any byte hit the socket
		}
		return fail(err)
	}
	resp, err := readFrame(c.nc)
	if err != nil {
		return fail(err)
	}
	if len(resp) >= 2 && resp[0] == msgError {
		d := &decoder{data: resp, off: 1}
		code, _ := d.byte()
		msg, merr := d.bytes()
		if merr != nil {
			return fail(merr)
		}
		return nil, &RemoteError{Code: code, Msg: string(msg)}
	}
	return resp, nil
}

// expect checks the response tag and returns a decoder past it.
func expect(resp []byte, tag byte) (*decoder, error) {
	if len(resp) == 0 || resp[0] != tag {
		return nil, fmt.Errorf("%w: unexpected response 0x%02x (want 0x%02x)", ErrFrameCorrupt, resp[0], tag)
	}
	return &decoder{data: resp, off: 1}, nil
}

// QueryContext executes query text with bound args on the server and
// returns the tracked result: every cell's policy annotation crossed
// the wire and was re-interned, so taint is byte-identical to an
// in-process query.
func (c *Conn) QueryContext(ctx context.Context, q core.String, args ...any) (*sqldb.Result, error) {
	p := []byte{msgQuery}
	p, err := appendTracked(p, q)
	if err != nil {
		return nil, err
	}
	if p, err = appendArgs(p, args); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, p)
	if err != nil {
		return nil, err
	}
	d, err := expect(resp, msgResult)
	if err != nil {
		return nil, err
	}
	return d.readResult()
}

// Query is QueryContext with context.Background.
func (c *Conn) Query(q core.String, args ...any) (*sqldb.Result, error) {
	return c.QueryContext(context.Background(), q, args...)
}

// QueryRaw is Query for untracked query text.
func (c *Conn) QueryRaw(q string, args ...any) (*sqldb.Result, error) {
	return c.Query(core.NewString(q), args...)
}

// ExecContext executes and returns the affected-row count.
func (c *Conn) ExecContext(ctx context.Context, q core.String, args ...any) (int, error) {
	res, err := c.QueryContext(ctx, q, args...)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// Exec is ExecContext with context.Background.
func (c *Conn) Exec(q core.String, args ...any) (int, error) {
	return c.ExecContext(context.Background(), q, args...)
}

// Stmt is a server-side prepared statement handle.
type Stmt struct {
	c     *Conn
	id    uint64
	nargs int
}

// PrepareContext compiles query text into a server-side prepared
// statement owned by this connection.
func (c *Conn) PrepareContext(ctx context.Context, q core.String) (*Stmt, error) {
	p := []byte{msgPrepare}
	p, err := appendTracked(p, q)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, p)
	if err != nil {
		return nil, err
	}
	d, err := expect(resp, msgPrepared)
	if err != nil {
		return nil, err
	}
	id, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	nargs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: id, nargs: int(nargs)}, nil
}

// Prepare is PrepareContext with context.Background.
func (c *Conn) Prepare(q core.String) (*Stmt, error) {
	return c.PrepareContext(context.Background(), q)
}

// NumArgs returns the number of distinct binding ordinals.
func (st *Stmt) NumArgs() int { return st.nargs }

// QueryContext executes the prepared statement with bound args
// (positional values or sqldb.Named values).
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*sqldb.Result, error) {
	p := []byte{msgExec}
	p = binary.AppendUvarint(p, st.id)
	p, err := appendArgs(p, args)
	if err != nil {
		return nil, err
	}
	resp, err := st.c.roundTrip(ctx, p)
	if err != nil {
		return nil, err
	}
	d, err := expect(resp, msgResult)
	if err != nil {
		return nil, err
	}
	return d.readResult()
}

// Query is QueryContext with context.Background.
func (st *Stmt) Query(args ...any) (*sqldb.Result, error) {
	return st.QueryContext(context.Background(), args...)
}

// ExecContext executes and returns the affected-row count.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (int, error) {
	res, err := st.QueryContext(ctx, args...)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// Exec is ExecContext with context.Background.
func (st *Stmt) Exec(args ...any) (int, error) {
	return st.ExecContext(context.Background(), args...)
}

// Close releases the server-side statement.
func (st *Stmt) Close() error {
	p := []byte{msgCloseStmt}
	p = binary.AppendUvarint(p, st.id)
	resp, err := st.c.roundTrip(context.Background(), p)
	if err != nil {
		return err
	}
	_, err = expect(resp, msgAck)
	return err
}

// ack sends a bodyless request expecting msgAck.
func (c *Conn) ack(ctx context.Context, tag byte) error {
	resp, err := c.roundTrip(ctx, []byte{tag})
	if err != nil {
		return err
	}
	_, err = expect(resp, msgAck)
	return err
}

// BeginContext opens the connection's transaction (at most one; it is
// connection state on the server).
func (c *Conn) BeginContext(ctx context.Context) error { return c.ack(ctx, msgBegin) }

// Begin is BeginContext with context.Background.
func (c *Conn) Begin() error { return c.BeginContext(context.Background()) }

// CommitContext commits the connection's transaction.
func (c *Conn) CommitContext(ctx context.Context) error { return c.ack(ctx, msgCommit) }

// Commit is CommitContext with context.Background.
func (c *Conn) Commit() error { return c.CommitContext(context.Background()) }

// RollbackContext rolls back the connection's transaction.
func (c *Conn) RollbackContext(ctx context.Context) error { return c.ack(ctx, msgRollback) }

// Rollback is RollbackContext with context.Background.
func (c *Conn) Rollback() error { return c.RollbackContext(context.Background()) }

// Status reports the server's role and replication position.
func (c *Conn) Status() (Status, error) {
	return c.StatusContext(context.Background())
}

// StatusContext is Status honoring ctx.
func (c *Conn) StatusContext(ctx context.Context) (Status, error) {
	resp, err := c.roundTrip(ctx, []byte{msgStatus})
	if err != nil {
		return Status{}, err
	}
	d, err := expect(resp, msgStatusReply)
	if err != nil {
		return Status{}, err
	}
	return d.readStatus()
}
