package wire

import (
	"context"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"resin/internal/core"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
)

// wiretripBlock extracts the worked-example block of docs/WIRE.md §7:
// the INSERT, the SELECT, and the pinned annotation line.
func wiretripBlock(t *testing.T) (insert, query, annotation string) {
	t.Helper()
	data, err := os.ReadFile("../../docs/WIRE.md")
	if err != nil {
		t.Fatalf("docs/WIRE.md must exist: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "<!-- wiretrip:begin -->")
	end := strings.Index(text, "<!-- wiretrip:end -->")
	if start < 0 || end < 0 || end < start {
		t.Fatal("docs/WIRE.md lost its wiretrip:begin/end markers")
	}
	var stmts []string
	for _, line := range strings.Split(text[start:end], "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "```") ||
			strings.HasPrefix(line, "--") || strings.HasPrefix(line, "<!--") {
			continue
		}
		stmts = append(stmts, line)
	}
	if len(stmts) != 3 {
		t.Fatalf("wiretrip block must pin INSERT, SELECT, and annotation; got %d lines", len(stmts))
	}
	return stmts[0], stmts[1], stmts[2]
}

// TestWireDocWorkedExample executes docs/WIRE.md §7 against a real
// server over TCP: the documented INSERT with the documented tracked
// value, the documented SELECT, and the pinned annotation — which must
// also equal the in-process read's, byte for byte.
func TestWireDocWorkedExample(t *testing.T) {
	insert, query, wantAnn := wiretripBlock(t)

	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE notes (id INT, body TEXT)")
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db, Config{})
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	// The tracked value exactly as the doc's comment describes it.
	body := sanitize.Taint(core.NewString("hello <b>resin</b>"), "form:body")
	if _, err := c.QueryRaw(insert, body); err != nil {
		t.Fatalf("documented INSERT: %v", err)
	}

	overWire, err := c.QueryRaw(query)
	if err != nil {
		t.Fatalf("documented SELECT: %v", err)
	}
	if overWire.Len() != 1 {
		t.Fatalf("rows: %d", overWire.Len())
	}
	gotAnn, err := core.EncodeSpans(overWire.Get(0, "body").Str)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotAnn) != wantAnn {
		t.Errorf("wire annotation drifted from docs/WIRE.md §7:\n  got %s\n  doc %s", gotAnn, wantAnn)
	}

	inProc, err := db.QueryRaw(query)
	if err != nil {
		t.Fatal(err)
	}
	localAnn, err := core.EncodeSpans(inProc.Get(0, "body").Str)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotAnn) != string(localAnn) {
		t.Errorf("wire annotation %s != in-process %s", gotAnn, localAnn)
	}
}

// TestWireDocPinsFrameBound keeps the documented 64 MiB bound honest.
func TestWireDocPinsFrameBound(t *testing.T) {
	data, err := os.ReadFile("../../docs/WIRE.md")
	if err != nil {
		t.Fatalf("docs/WIRE.md must exist: %v", err)
	}
	if !strings.Contains(string(data), "`MaxFrame = sqldb.WALMaxRecord` (64 MiB)") {
		t.Fatal("docs/WIRE.md no longer documents MaxFrame = sqldb.WALMaxRecord (64 MiB)")
	}
	if MaxFrame != 64<<20 {
		t.Fatalf("MaxFrame is %d, docs say 64 MiB — update docs/WIRE.md §2", MaxFrame)
	}
}
