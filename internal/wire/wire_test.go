package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"resin/internal/core"
	"resin/internal/remote"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
)

// wireTestPolicy is a marker policy for round-trip tests.
type wireTestPolicy struct {
	Tag string `json:"tag"`
}

func (p *wireTestPolicy) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("wiretest.Policy", &wireTestPolicy{})
}

// --- framing ---

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello, frames")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q want %q", got, payload)
	}
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[frameHeaderSize] ^= 0xff // flip a payload byte
	if _, err := readFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("corrupted frame read: %v", err)
	}
}

// TestMaxFrameMatchesWAL pins the frame bound to the WAL record bound:
// the PR-4 symmetric-enforcement fix, applied to the socket. If either
// limit moves without the other, a log chunk or result could be
// acceptable on one side and refused on the other.
func TestMaxFrameMatchesWAL(t *testing.T) {
	if MaxFrame != sqldb.WALMaxRecord {
		t.Fatalf("MaxFrame %d != sqldb.WALMaxRecord %d", MaxFrame, sqldb.WALMaxRecord)
	}
}

// TestOversizeFrameTyped: both directions refuse an oversized frame
// with the typed error, before any byte is interpreted (encode) or
// allocated (decode).
func TestOversizeFrameTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize write: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversize write left %d bytes on the stream", buf.Len())
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(MaxFrame+1))
	if _, err := readFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize read: %v", err)
	}
}

// --- interop: one canonical policy serialization ---

// TestWireAnnotationMatchesRemote proves the wire protocol and the
// remote link serialize policy sets identically: both are exactly
// core.EncodeSpans, byte for byte, and both decode to a string whose
// re-encoded spans equal the original's.
func TestWireAnnotationMatchesRemote(t *testing.T) {
	s := core.Concat(
		core.NewString("plain-"),
		core.NewStringPolicy("tainted", &wireTestPolicy{Tag: "interop"}).
			WithPolicy(&sanitize.UntrustedData{Source: "test"}),
		core.NewString("-tail"),
	)
	canonical, err := core.EncodeSpans(s)
	if err != nil {
		t.Fatal(err)
	}

	// Wire encoding embeds the canonical annotation verbatim.
	p, err := appendTracked(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	d := &decoder{data: p}
	raw, err := d.bytes()
	if err != nil {
		t.Fatal(err)
	}
	ann, err := d.bytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != s.Raw() {
		t.Fatalf("wire raw %q != %q", raw, s.Raw())
	}
	if !bytes.Equal(ann, canonical) {
		t.Fatalf("wire annotation %s != canonical %s", ann, canonical)
	}

	// The remote link round-trips through the same encoding; its
	// decoded string re-encodes to the same canonical bytes as the wire
	// decoder's.
	rt := core.NewRuntime()
	ea, eb := remote.NewLink(rt, rt)
	if err := ea.Send(s); err != nil {
		t.Fatal(err)
	}
	viaRemote, err := eb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	d2 := &decoder{data: p}
	viaWire, err := d2.readTracked()
	if err != nil {
		t.Fatal(err)
	}
	remoteAnn, err := core.EncodeSpans(viaRemote)
	if err != nil {
		t.Fatal(err)
	}
	wireAnn, err := core.EncodeSpans(viaWire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireAnn, canonical) || !bytes.Equal(remoteAnn, canonical) {
		t.Fatalf("decode not canonical:\n  wire   %s\n  remote %s\n  want   %s", wireAnn, remoteAnn, canonical)
	}
}

// --- server round trips ---

func startServer(t testing.TB, db *sqldb.DB, cfg Config) (addr string, srv *Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(db, cfg)
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})
	return lis.Addr().String(), srv
}

func dialT(t testing.TB, addr string) *Conn {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck
	return c
}

// TestServerTaintRoundTrip: a tainted value written through the client
// comes back over the wire with its interned policy set equal to what
// the same query returns in-process — the acceptance criterion, pinned
// at EncodeSpans byte granularity.
func TestServerTaintRoundTrip(t *testing.T) {
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE notes (id INT, body TEXT)")
	addr, _ := startServer(t, db, Config{})
	c := dialT(t, addr)

	tainted := core.NewStringPolicy("hello <script>", &wireTestPolicy{Tag: "rt"}).
		WithPolicy(&sanitize.UntrustedData{Source: "client"})
	if _, err := c.QueryRaw("INSERT INTO notes (id, body) VALUES (?, ?)", 7, tainted); err != nil {
		t.Fatal(err)
	}

	overWire, err := c.QueryRaw("SELECT id, body FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	inProc, err := db.QueryRaw("SELECT id, body FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, overWire, inProc)

	cell := overWire.Get(0, "body")
	if !cell.Str.IsTainted() {
		t.Fatal("taint lost over the wire")
	}
	var saw bool
	for _, p := range cell.Str.Policies().Policies() {
		if wp, ok := p.(*wireTestPolicy); ok && wp.Tag == "rt" {
			saw = true
		}
	}
	if !saw {
		t.Fatal("wireTestPolicy lost over the wire")
	}
}

// assertResultsEqual compares two results byte-for-byte: columns, row
// order, raw values, and the EncodeSpans annotation of every cell.
func assertResultsEqual(t testing.TB, a, b *sqldb.Result) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", len(a.Rows), len(a.Columns), len(b.Rows), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			t.Fatalf("column %d: %q vs %q", i, a.Columns[i], b.Columns[i])
		}
	}
	for r := range a.Rows {
		for c := range a.Rows[r] {
			ca, cb := a.Rows[r][c], b.Rows[r][c]
			if ca.Null != cb.Null || ca.IsInt != cb.IsInt {
				t.Fatalf("row %d col %d: kind mismatch", r, c)
			}
			ta, tb := ca.Text(), cb.Text()
			if ta.Raw() != tb.Raw() {
				t.Fatalf("row %d col %d: %q vs %q", r, c, ta.Raw(), tb.Raw())
			}
			annA, errA := core.EncodeSpans(ta)
			annB, errB := core.EncodeSpans(tb)
			if errA != nil || errB != nil {
				t.Fatalf("encode spans: %v / %v", errA, errB)
			}
			if !bytes.Equal(annA, annB) {
				t.Fatalf("row %d col %d annotation mismatch:\n  %s\n  %s", r, c, annA, annB)
			}
		}
	}
}

func TestPreparedStatementsOverWire(t *testing.T) {
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE kv (k TEXT, v INT)")
	addr, _ := startServer(t, db, Config{})
	c := dialT(t, addr)

	ins, err := c.Prepare(core.NewString("INSERT INTO kv (k, v) VALUES (:key, :val)"))
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumArgs() != 2 {
		t.Fatalf("NumArgs = %d, want 2", ins.NumArgs())
	}
	for i := 0; i < 5; i++ {
		if _, err := ins.Exec(sqldb.Named("val", i), sqldb.Named("key", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := c.Prepare(core.NewString("SELECT v FROM kv WHERE k = ? LIMIT ?"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sel.Query("k3", 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "v").Int.Value() != 3 {
		t.Fatalf("got %d rows, v=%v", res.Len(), res.Get(0, "v"))
	}
	if err := sel.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Query("k3", 10); err == nil {
		t.Fatal("closed statement executed")
	}
}

func TestTransactionOverWire(t *testing.T) {
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE acct (id INT, bal INT)")
	db.MustExec("INSERT INTO acct (id, bal) VALUES (1, 100), (2, 0)")
	addr, _ := startServer(t, db, Config{})
	c := dialT(t, addr)

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryRaw("UPDATE acct SET bal = 50 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryRaw("UPDATE acct SET bal = 50 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: invisible outside the connection's transaction.
	res, _ := db.QueryRaw("SELECT bal FROM acct WHERE id = 2")
	if res.Get(0, "bal").Int.Value() != 0 {
		t.Fatal("transaction leaked before commit")
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ = db.QueryRaw("SELECT bal FROM acct WHERE id = 2")
	if res.Get(0, "bal").Int.Value() != 50 {
		t.Fatal("commit not visible")
	}

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryRaw("UPDATE acct SET bal = 999 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, _ = db.QueryRaw("SELECT bal FROM acct WHERE id = 1")
	if res.Get(0, "bal").Int.Value() != 50 {
		t.Fatal("rollback did not discard")
	}
}

func TestConnectionLimit(t *testing.T) {
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	addr, _ := startServer(t, db, Config{MaxConns: 1})
	c1 := dialT(t, addr)
	if _, err := c1.Status(); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addr)
	if err == nil {
		_, err = c2.Status()
		c2.Close() //nolint:errcheck
	}
	if err == nil {
		t.Fatal("second connection served past MaxConns=1")
	}
}

func TestGracefulDrain(t *testing.T) {
	rt := core.NewRuntime()
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE t (a INT)")
	addr, srv := startServer(t, db, Config{})
	c := dialT(t, addr)
	if _, err := c.QueryRaw("INSERT INTO t (a) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := c.QueryRaw("SELECT a FROM t"); err == nil {
		t.Fatal("query succeeded after drain")
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}

// --- replication ---

// startPrimary opens a WAL-backed primary and serves it.
func startPrimary(t testing.TB, rt *core.Runtime) (*sqldb.DB, string) {
	t.Helper()
	db, err := sqldb.OpenDB(rt, filepath.Join(t.TempDir(), "primary.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() }) //nolint:errcheck
	addr, _ := startServer(t, db, Config{})
	return db, addr
}

// startReplica ships from primaryAddr into a fresh local log and serves
// it read-only; returns the replica and its serving address.
func startReplica(t testing.TB, rt *core.Runtime, primaryAddr, path string) (*Replica, string) {
	t.Helper()
	r, err := NewReplica(rt, primaryAddr, path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Run(ctx) //nolint:errcheck
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		r.DB().Close() //nolint:errcheck
	})

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fsrv := NewFollowerServer(r, Config{})
	go fsrv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		fsrv.Shutdown(sctx) //nolint:errcheck
	})
	return r, lis.Addr().String()
}

// waitCaughtUp polls until the replica has applied the primary's entire
// current log.
func waitCaughtUp(t testing.TB, r *Replica, db *sqldb.DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, size, err := db.WALStatus()
		if err != nil {
			t.Fatal(err)
		}
		applied, _ := r.Follower().Offsets()
		if applied == size && r.DB().Frontier() == db.Frontier() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	applied, received := r.Follower().Offsets()
	_, size, _ := db.WALStatus()
	t.Fatalf("replica never caught up: applied %d received %d, primary %d; frontiers %d vs %d",
		applied, received, size, r.DB().Frontier(), db.Frontier())
}

// TestReplicaServesReadsAtFrontier is the replication acceptance
// criterion: after catching up, a follower read at its reported
// frontier is byte-identical — rows, order, and EncodeSpans policy
// spans — to the primary's read at the same frontier, taint included.
func TestReplicaServesReadsAtFrontier(t *testing.T) {
	rt := core.NewRuntime()
	db, addr := startPrimary(t, rt)
	r, faddr := startReplica(t, rt, addr, filepath.Join(t.TempDir(), "replica.wal"))

	pc := dialT(t, addr)
	if _, err := pc.QueryRaw("CREATE TABLE posts (id INT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		body := core.NewStringPolicy(fmt.Sprintf("post %d", i), &wireTestPolicy{Tag: "repl"}).
			WithPolicy(&sanitize.UntrustedData{Source: "poster"})
		if _, err := pc.QueryRaw("INSERT INTO posts (id, body) VALUES (?, ?)", i, body); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, r, db)

	fc := dialT(t, faddr)
	st, err := fc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" {
		t.Fatalf("role %q", st.Role)
	}
	if st.Frontier != db.Frontier() {
		t.Fatalf("follower frontier %d != primary %d", st.Frontier, db.Frontier())
	}

	q := "SELECT id, body FROM posts ORDER BY id"
	onFollower, err := fc.QueryRaw(q)
	if err != nil {
		t.Fatal(err)
	}
	onPrimary, err := db.QueryRaw(q)
	if err != nil {
		t.Fatal(err)
	}
	if onFollower.Len() != 20 {
		t.Fatalf("follower rows: %d", onFollower.Len())
	}
	assertResultsEqual(t, onFollower, onPrimary)
	if !onFollower.Get(3, "body").Str.IsTainted() {
		t.Fatal("taint lost through replication")
	}
}

// TestReplicaReadOnly: writes and transactions on a follower fail with
// the typed error, across the wire.
func TestReplicaReadOnly(t *testing.T) {
	rt := core.NewRuntime()
	db, addr := startPrimary(t, rt)
	r, faddr := startReplica(t, rt, addr, filepath.Join(t.TempDir(), "replica.wal"))
	pc := dialT(t, addr)
	if _, err := pc.QueryRaw("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, r, db)

	fc := dialT(t, faddr)
	if _, err := fc.QueryRaw("INSERT INTO t (a) VALUES (1)"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("insert on replica: %v", err)
	}
	if err := fc.Begin(); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("begin on replica: %v", err)
	}
	if _, err := fc.QueryRaw("SELECT a FROM t"); err != nil {
		t.Fatalf("select on replica: %v", err)
	}
}

// TestReplicaKillAndResume: kill the replica mid-replay (ungraceful —
// goroutines torn down, local log left as-is, possibly mid-group),
// restart it on the same log, and require catch-up to frontier
// equality. Recovery is plain OpenDB: torn or uncommitted tails
// truncate, and the handshake resumes shipping from the recovered
// offset.
func TestReplicaKillAndResume(t *testing.T) {
	rt := core.NewRuntime()
	db, addr := startPrimary(t, rt)
	path := filepath.Join(t.TempDir(), "replica.wal")

	pc := dialT(t, addr)
	if _, err := pc.QueryRaw("CREATE TABLE t (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := pc.Prepare(core.NewString("INSERT INTO t (a, b) VALUES (?, ?)"))
	if err != nil {
		t.Fatal(err)
	}
	write := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body := core.NewStringPolicy(fmt.Sprintf("row %d", i), &wireTestPolicy{Tag: "kill"})
			if _, err := ins.Exec(i, body); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(0, 50)

	// Phase 1: replica ships some of the load, then dies abruptly.
	r1, err := NewReplica(rt, addr, path)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() { defer close(done1); r1.Run(ctx1) }() //nolint:errcheck
	deadline := time.Now().Add(10 * time.Second)
	for {
		if applied, _ := r1.Follower().Offsets(); applied > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never applied anything")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel1()
	<-done1
	r1.DB().Close() //nolint:errcheck

	// More writes land while the replica is down.
	write(50, 100)

	// Phase 2: restart on the same log; it must catch up to byte and
	// frontier equality.
	r2, faddr := startReplica(t, rt, addr, path)
	waitCaughtUp(t, r2, db)
	if r2.Resyncs() != 0 {
		t.Fatalf("restart forced %d resync(s); want offset-based catch-up", r2.Resyncs())
	}

	fc := dialT(t, faddr)
	onFollower, err := fc.QueryRaw("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	onPrimary, err := db.QueryRaw("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if onFollower.Len() != 100 {
		t.Fatalf("follower rows: %d", onFollower.Len())
	}
	assertResultsEqual(t, onFollower, onPrimary)
}

// TestReplicaDivergedResync: a follower whose log is not a byte prefix
// of the primary's gets the typed divergence error and resyncs from
// scratch automatically.
func TestReplicaDivergedResync(t *testing.T) {
	rt := core.NewRuntime()
	db, addr := startPrimary(t, rt)
	pc := dialT(t, addr)
	if _, err := pc.QueryRaw("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.QueryRaw("INSERT INTO t (a) VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}

	// Fabricate a forked follower log: same length class, different
	// history (its own table).
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.wal")
	forked, err := sqldb.OpenDB(rt, path)
	if err != nil {
		t.Fatal(err)
	}
	forked.MustExec("CREATE TABLE other (x TEXT)")
	forked.MustExec("INSERT INTO other (x) VALUES ('fork')")
	if err := forked.Close(); err != nil {
		t.Fatal(err)
	}

	r, faddr := startReplica(t, rt, addr, path)
	waitCaughtUp(t, r, db)
	if r.Resyncs() == 0 {
		t.Fatal("diverged follower never resynced")
	}
	fc := dialT(t, faddr)
	res, err := fc.QueryRaw("SELECT a FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("post-resync rows: %d", res.Len())
	}
	if _, err := fc.QueryRaw("SELECT x FROM other"); err == nil {
		t.Fatal("forked table survived resync")
	}
}

// TestVerifyWALPrefixTyped pins the behind/diverged distinction at the
// sqldb layer: a true prefix is accepted (behind = resumable), a forked
// prefix is ErrShipDiverged, and a too-long prefix is ErrShipDiverged.
func TestVerifyWALPrefixTyped(t *testing.T) {
	rt := core.NewRuntime()
	db, err := sqldb.OpenDB(rt, filepath.Join(t.TempDir(), "p.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t (a) VALUES (1)")
	_, size, err := db.WALStatus()
	if err != nil {
		t.Fatal(err)
	}
	half := size / 2
	crc, err := db.WALPrefixCRC(half)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyWALPrefix(half, crc); err != nil {
		t.Fatalf("true prefix rejected: %v", err)
	}
	if err := db.VerifyWALPrefix(half, crc^0xdeadbeef); !errors.Is(err, sqldb.ErrShipDiverged) {
		t.Fatalf("forked prefix: %v", err)
	}
	if err := db.VerifyWALPrefix(size+100, crc); !errors.Is(err, sqldb.ErrShipDiverged) {
		t.Fatalf("over-long prefix: %v", err)
	}
}

// TestConcurrentClientsWithShipping exercises the -race coverage the
// issue asks for: many wire clients writing and reading the primary
// while the replication stream ships and the follower serves reads.
func TestConcurrentClientsWithShipping(t *testing.T) {
	rt := core.NewRuntime()
	db, addr := startPrimary(t, rt)
	r, faddr := startReplica(t, rt, addr, filepath.Join(t.TempDir(), "replica.wal"))
	pc := dialT(t, addr)
	if _, err := pc.QueryRaw("CREATE TABLE load (w INT, i INT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, r, db)

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close() //nolint:errcheck
			fcr, err := Dial(faddr)
			if err != nil {
				errs <- err
				return
			}
			defer fcr.Close() //nolint:errcheck
			for i := 0; i < perWorker; i++ {
				body := core.NewStringPolicy(fmt.Sprintf("w%d-%d", w, i), &wireTestPolicy{Tag: "load"})
				if _, err := c.QueryRaw("INSERT INTO load (w, i, body) VALUES (?, ?, ?)", w, i, body); err != nil {
					errs <- err
					return
				}
				if _, err := fcr.QueryRaw("SELECT COUNT(*) FROM load"); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitCaughtUp(t, r, db)
	res, err := r.DB().QueryRaw("SELECT COUNT(*) FROM load")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Get(0, "COUNT(*)").Int.Value(); n != workers*perWorker {
		t.Fatalf("replica row count %d, want %d", n, workers*perWorker)
	}
}

// TestFollowerLocalLogIsBytePrefix: the replica's on-disk log is a
// byte-exact prefix (here: byte-identical, once caught up) of the
// primary's — the invariant the CRC handshake relies on.
func TestFollowerLocalLogIsBytePrefix(t *testing.T) {
	rt := core.NewRuntime()
	pdir, rdir := t.TempDir(), t.TempDir()
	db, err := sqldb.OpenDB(rt, filepath.Join(pdir, "p.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	addr, _ := startServer(t, db, Config{})
	rpath := filepath.Join(rdir, "r.wal")
	r, _ := startReplica(t, rt, addr, rpath)

	db.MustExec("CREATE TABLE t (a TEXT)")
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t (a) VALUES ('v%d')", i))
	}
	waitCaughtUp(t, r, db)
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	ppath := filepath.Join(pdir, "p.wal")
	pb, err := os.ReadFile(ppath)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(rpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, rb) {
		t.Fatalf("logs differ: primary %d bytes, replica %d bytes", len(pb), len(rb))
	}
}
