package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"resin/internal/core"
	"resin/internal/sqldb"
)

// Replica is a WAL-shipping read replica: it maintains a local database
// whose log is a byte-prefix copy of a primary's, replays shipped
// records continuously, and serves (via NewFollowerServer) read-only
// queries at its applied frontier. Run drives the shipping connection;
// crash recovery is plain sqldb.OpenDB on the local log — the replica
// resumes from its recovered offset, catching up over the same
// handshake as a fresh connection.
type Replica struct {
	rt   *core.Runtime
	addr string // primary's wire address
	path string // local log path

	mu  sync.RWMutex
	db  *sqldb.DB
	fol *sqldb.Follower

	primarySize atomic.Int64
	resyncs     atomic.Int64
	lastErr     atomic.Value // string
}

// NewReplica opens (or re-opens after a crash) the local replica
// database at path, positioned to ship from the primary at addr.
func NewReplica(rt *core.Runtime, addr, path string) (*Replica, error) {
	db, err := sqldb.OpenDB(rt, path)
	if err != nil {
		return nil, err
	}
	fol, err := sqldb.NewFollower(db)
	if err != nil {
		db.Close() //nolint:errcheck
		return nil, err
	}
	return &Replica{rt: rt, addr: addr, path: path, db: db, fol: fol}, nil
}

// DB returns the replica's current database (replaced on resync).
func (r *Replica) DB() *sqldb.DB {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.db
}

// Follower returns the replica's current follower state.
func (r *Replica) Follower() *sqldb.Follower {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fol
}

// Resyncs counts full resyncs (divergence recoveries) this process.
func (r *Replica) Resyncs() int64 { return r.resyncs.Load() }

// Status reports the replica's replication position, served by
// NewFollowerServer as this replica's msgStatus reply.
func (r *Replica) Status() Status {
	r.mu.RLock()
	db, fol := r.db, r.fol
	r.mu.RUnlock()
	st := Status{Role: "follower", Frontier: db.Frontier(), PrimarySize: r.primarySize.Load()}
	if epoch, size, err := db.WALStatus(); err == nil {
		st.Epoch, st.WALSize = epoch, size
	}
	st.Applied, st.Received = fol.Offsets()
	if st.PrimarySize < st.Received {
		st.PrimarySize = st.Received
	}
	return st
}

// Staleness reports how many primary log bytes the replica has yet to
// apply, by its last observation of the primary's size (heartbeats keep
// it fresh to ~1s even on an idle stream).
func (r *Replica) Staleness() int64 {
	st := r.Status()
	lag := st.PrimarySize - st.Applied
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Run ships from the primary until ctx is done, reconnecting with
// backoff on connection loss, catching up from the local offset
// (ErrBehind restarts the handshake), and resyncing from scratch on
// divergence. It returns only when ctx ends.
func (r *Replica) Run(ctx context.Context) error {
	backoff := 50 * time.Millisecond
	for {
		err := r.stream(ctx)
		if ctx.Err() != nil {
			return nil
		}
		switch {
		case errors.Is(err, ErrDiverged) || errors.Is(err, sqldb.ErrWALCorrupt):
			if rerr := r.resync(); rerr != nil {
				r.lastErr.Store(rerr.Error())
			}
		case errors.Is(err, ErrBehind) || err == nil:
			// Re-handshake from the current offsets immediately.
			backoff = 50 * time.Millisecond
		}
		if err != nil {
			r.lastErr.Store(err.Error())
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// stream runs one shipping connection: dial, handshake at the local
// log's position, then apply chunks until the connection or ctx ends.
func (r *Replica) stream(ctx context.Context) error {
	r.mu.RLock()
	db, fol := r.db, r.fol
	r.mu.RUnlock()

	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", r.addr)
	if err != nil {
		return err
	}
	defer nc.Close() //nolint:errcheck
	// Interrupt blocked reads when ctx ends.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			nc.Close() //nolint:errcheck
		case <-watchDone:
		}
	}()

	nc.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if err := sendPreamble(nc); err != nil {
		return err
	}
	if err := expectPreamble(nc); err != nil {
		return err
	}

	// Handshake at the local log's full byte length (applied prefix plus
	// any mirrored-but-uncommitted tail): the primary verifies it is a
	// byte-exact prefix and ships from there.
	_, size, err := db.WALStatus()
	if err != nil {
		return err
	}
	crc, err := db.WALPrefixCRC(size)
	if err != nil {
		return err
	}
	p := []byte{msgHandshake}
	p = binary.AppendUvarint(p, uint64(size))
	p = binary.LittleEndian.AppendUint32(p, crc)
	if err := writeFrame(nc, p); err != nil {
		return err
	}
	resp, err := readFrame(nc)
	if err != nil {
		return err
	}
	if remote := asRemoteError(resp); remote != nil {
		return remote
	}
	d2, err := expect(resp, msgShipAccept)
	if err != nil {
		return err
	}
	if _, err := d2.uvarint(); err != nil { // epoch (informational)
		return err
	}
	psize, err := d2.uvarint()
	if err != nil {
		return err
	}
	r.primarySize.Store(int64(psize))

	// Receive loop: heartbeats arrive every shipHeartbeat, so a stalled
	// read means a dead primary — time out at several heartbeats.
	for {
		nc.SetReadDeadline(time.Now().Add(10 * shipHeartbeat)) //nolint:errcheck
		frame, err := readFrame(nc)
		if err != nil {
			return err
		}
		if remote := asRemoteError(frame); remote != nil {
			return remote
		}
		d := &decoder{data: frame, off: 1}
		if frame[0] != msgLogChunk {
			return fmt.Errorf("%w: unexpected frame 0x%02x on ship stream", ErrFrameCorrupt, frame[0])
		}
		off, err := d.uvarint()
		if err != nil {
			return err
		}
		if _, err := d.uvarint(); err != nil { // epoch
			return err
		}
		ps, err := d.uvarint()
		if err != nil {
			return err
		}
		data, err := d.bytes()
		if err != nil {
			return err
		}
		if err := d.done(); err != nil {
			return err
		}
		r.primarySize.Store(int64(ps))
		if len(data) == 0 {
			continue // heartbeat
		}
		if err := fol.Apply(int64(off), data); err != nil {
			return err
		}
	}
}

// asRemoteError decodes a msgError frame, or returns nil.
func asRemoteError(frame []byte) error {
	if len(frame) < 2 || frame[0] != msgError {
		return nil
	}
	d := &decoder{data: frame, off: 1}
	code, _ := d.byte()
	msg, err := d.bytes()
	if err != nil {
		return err
	}
	return &RemoteError{Code: code, Msg: string(msg)}
}

// resync discards the replica's state and starts over: the primary's
// log is no longer a superset of ours (it compacted, or we forked), so
// byte shipping can never reconcile. Open statements served from the
// old database keep their pre-resync snapshot; new requests see the
// fresh database immediately.
func (r *Replica) resync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.db.Close() //nolint:errcheck
	if err := os.Remove(r.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wire: resync: %w", err)
	}
	db, err := sqldb.OpenDB(r.rt, r.path)
	if err != nil {
		return fmt.Errorf("wire: resync: %w", err)
	}
	fol, err := sqldb.NewFollower(db)
	if err != nil {
		db.Close() //nolint:errcheck
		return fmt.Errorf("wire: resync: %w", err)
	}
	r.db, r.fol = db, fol
	r.primarySize.Store(0)
	r.resyncs.Add(1)
	return nil
}
