// Package wire is RESIN's client/server protocol: a framed, checksummed
// request/response stream that carries query text, bound arguments, and
// result rows *with their policy annotations*, so a tracked value that
// crosses the network arrives byte-identical — raw bytes and interned
// policy set — to what an in-process query would have returned. The
// normative format lives in docs/WIRE.md; the serialization of policy
// sets is core.EncodeSpans/DecodeSpans, the same canonical encoding the
// in-process message channels (internal/remote) use, pinned by
// TestWireAnnotationMatchesRemote.
//
// The same framing carries the replication stream: a primary ships raw
// WAL record bytes to follower processes (sqldb ship.go), which replay
// them continuously and serve read-only queries at their applied
// frontier.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"resin/internal/sqldb"
)

// Protocol constants. The frame discipline is the WAL's record
// discipline applied to a socket: length, then CRC-32 (IEEE) of the
// payload, then the payload — a corrupted or truncated frame is
// detected before any byte of it is interpreted.
const (
	// Magic opens every connection, sent by the client and echoed by
	// the server, followed by one version byte each way.
	Magic   = "RESINNET"
	Version = 0x01

	frameHeaderSize = 8

	// MaxFrame bounds one frame's payload, enforced symmetrically on
	// encode and decode — exactly the WAL's walMaxRecord rule, and
	// pinned to the same value (TestMaxFrameMatchesWAL): a result or
	// log chunk that fits in the log fits on the wire, and neither
	// side can acknowledge bytes the other must then discard. Without
	// the send-side check an oversized result would be "sent" and then
	// kill the connection at the receiver instead of failing the one
	// request.
	MaxFrame = sqldb.WALMaxRecord
)

// ErrFrameTooLarge rejects a single frame exceeding MaxFrame, on either
// side of the socket; the request fails, the connection survives.
var ErrFrameTooLarge = errors.New("wire: frame exceeds the maximum frame size")

// ErrFrameCorrupt reports a checksum mismatch or malformed framing; the
// stream cannot be resynchronized and the connection must be dropped.
var ErrFrameCorrupt = errors.New("wire: corrupt frame")

// ErrBadPreamble reports a peer that did not open with Magic+Version.
var ErrBadPreamble = errors.New("wire: bad protocol preamble")

// writeFrame frames payload onto w: uint32 LE length, uint32 LE CRC-32
// (IEEE) of the payload, payload bytes, as one Write.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, len(payload))
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame's payload from r, verifying length bound
// and checksum before returning a byte of it.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if ln == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrFrameCorrupt)
	}
	if int(ln) > MaxFrame {
		return nil, fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, ln)
	}
	payload := make([]byte, ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return payload, nil
}

// sendPreamble writes this side's Magic+Version.
func sendPreamble(w io.Writer) error {
	buf := append([]byte(Magic), Version)
	_, err := w.Write(buf)
	return err
}

// expectPreamble reads and verifies the peer's Magic+Version.
func expectPreamble(r io.Reader) error {
	buf := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPreamble, err)
	}
	if string(buf[:len(Magic)]) != Magic {
		return fmt.Errorf("%w: bad magic", ErrBadPreamble)
	}
	if buf[len(Magic)] != Version {
		return fmt.Errorf("%w: version %d (want %d)", ErrBadPreamble, buf[len(Magic)], Version)
	}
	return nil
}
