// Package remote implements the distributed-system extension sketched in
// §8 of the RESIN paper: "we are interested in extending RESIN to
// propagate policies between machines in a distributed system similar to
// the way DStar does with information flow labels."
//
// A Link connects two runtimes with a pair of message endpoints. Inside
// the link, data does not *exit* the system — both ends enforce the same
// assertions — so the link's boundary filter serializes the policy
// annotation along with the payload instead of running export checks,
// exactly like the persistent-storage filters of §3.4.1. The receiving
// runtime re-instantiates the policy objects from its own registered
// classes; a policy class the receiver does not know is an error, never a
// silent drop.
package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"resin/internal/core"
)

// wireMsg is one serialized message on the link.
type wireMsg struct {
	Data       string          `json:"data"`
	Annotation json.RawMessage `json:"annotation,omitempty"`
}

// Endpoint is one side of a link.
type Endpoint struct {
	rt   *core.Runtime
	ch   *core.Channel
	mu   sync.Mutex
	in   []wireMsg
	peer *Endpoint
}

// NewLink connects two runtimes and returns their endpoints. Passing the
// same runtime twice models two components of one program; different
// runtimes model different machines.
func NewLink(a, b *core.Runtime) (*Endpoint, *Endpoint) {
	ea := &Endpoint{rt: a, ch: core.NewChannel(a, core.KindSocket)}
	eb := &Endpoint{rt: b, ch: core.NewChannel(b, core.KindSocket)}
	ea.ch.Context().Set("remote", "resin-link")
	eb.ch.Context().Set("remote", "resin-link")
	ea.peer = eb
	eb.peer = ea
	return ea, eb
}

// Channel returns the endpoint's boundary channel, for attaching extra
// filters (e.g. stripping policies that must not cross machines).
func (e *Endpoint) Channel() *core.Channel { return e.ch }

// Send transmits tracked data to the peer. With tracking enabled, the
// policy annotation travels with the bytes; extra write filters installed
// on the endpoint's channel run first and may rewrite or veto.
func (e *Endpoint) Send(data core.String) error {
	// Run the channel's write filters (there is no default export check:
	// the link propagates rather than discloses). The channel captures
	// released output; we use its filter pass and then take the result.
	filtered := data
	if e.rt.Tracking() {
		for _, f := range e.ch.Filters() {
			wf, ok := f.(core.WriteFilter)
			if !ok {
				continue
			}
			var err error
			filtered, err = wf.FilterWrite(e.ch, filtered, 0)
			if err != nil {
				return err
			}
		}
	}
	msg := wireMsg{Data: filtered.Raw()}
	if e.rt.Tracking() {
		ann, err := core.EncodeSpans(filtered)
		if err != nil {
			return fmt.Errorf("remote: cannot serialize policies: %w", err)
		}
		if len(ann) > 0 {
			core.LineageRecordValue(filtered, "remote-send", "remote.link")
		}
		msg.Annotation = ann
	}
	e.peer.mu.Lock()
	e.peer.in = append(e.peer.in, msg)
	e.peer.mu.Unlock()
	return nil
}

// ErrEmpty is returned by Recv when no message is queued.
var ErrEmpty = errors.New("remote: no message queued")

// Recv returns the next queued message with its policies re-instantiated
// in the receiving runtime. Read filters installed on the endpoint's
// channel run after re-attachment (e.g. to taint link input, or to run
// ReadCheck policies).
func (e *Endpoint) Recv() (core.String, error) {
	e.mu.Lock()
	if len(e.in) == 0 {
		e.mu.Unlock()
		return core.String{}, ErrEmpty
	}
	msg := e.in[0]
	e.in = e.in[1:]
	e.mu.Unlock()

	if !e.rt.Tracking() {
		return core.NewString(msg.Data), nil
	}
	data, err := core.DecodeSpans(msg.Data, msg.Annotation)
	if err != nil {
		return core.String{}, fmt.Errorf("remote: cannot restore policies: %w", err)
	}
	core.LineageRecordValue(data, "remote-recv", "remote.link")
	return e.ch.Read(data)
}

// Pending returns the number of queued messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.in)
}
