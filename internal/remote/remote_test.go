package remote

import (
	"errors"
	"sync"
	"testing"

	"resin/internal/core"
)

type secretPolicy struct {
	Owner string `json:"owner"`
}

func (p *secretPolicy) ExportCheck(ctx *core.Context) error {
	return errors.New("secret of " + p.Owner)
}

type unregisteredPolicy struct{}

func (p *unregisteredPolicy) ExportCheck(ctx *core.Context) error { return nil }

func init() {
	core.RegisterPolicyClass("remotetest.SecretPolicy", &secretPolicy{})
}

func TestPoliciesCrossTheLink(t *testing.T) {
	rtA := core.NewRuntime()
	rtB := core.NewRuntime()
	a, b := NewLink(rtA, rtB)

	secret := core.Concat(
		core.NewString("public-"),
		core.NewStringPolicy("secret", &secretPolicy{Owner: "ops"}),
	)
	if err := a.Send(secret); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw() != "public-secret" {
		t.Fatalf("raw = %q", got.Raw())
	}
	if got.Slice(0, 7).IsTainted() {
		t.Error("untainted prefix gained policies across the link")
	}
	tail := got.Slice(7, got.Len())
	ps := tail.Policies().Policies()
	if len(ps) != 1 {
		t.Fatalf("policies = %d", len(ps))
	}
	sp, ok := ps[0].(*secretPolicy)
	if !ok || sp.Owner != "ops" {
		t.Fatalf("restored policy = %#v", ps[0])
	}
	// The restored policy still guards runtime B's boundaries.
	out := core.NewChannel(rtB, core.KindHTTP, core.ExportCheckFilter{})
	if err := out.Write(got); err == nil {
		t.Fatal("policy must still veto exports on the receiving machine")
	}
}

func TestUnknownPolicyClassIsAnError(t *testing.T) {
	rtA := core.NewRuntime()
	rtB := core.NewRuntime()
	a, b := NewLink(rtA, rtB)
	if err := a.Send(core.NewStringPolicy("x", &unregisteredPolicy{})); err == nil {
		t.Fatal("unregistered policies must not silently cross the link")
	}
	if b.Pending() != 0 {
		t.Error("failed send must not enqueue")
	}
}

func TestRecvEmpty(t *testing.T) {
	a, _ := NewLink(core.NewRuntime(), core.NewRuntime())
	if _, err := a.Recv(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty recv: %v", err)
	}
}

func TestUntrackedLinkDropsAnnotations(t *testing.T) {
	rtA := core.NewUntrackedRuntime()
	rtB := core.NewRuntime()
	a, b := NewLink(rtA, rtB)
	data := core.NewString("plain").WithPolicy(&secretPolicy{Owner: "x"})
	if err := a.Send(data); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.IsTainted() {
		t.Error("untracked sender cannot transmit annotations")
	}
}

func TestEndpointFiltersRun(t *testing.T) {
	rtA := core.NewRuntime()
	rtB := core.NewRuntime()
	a, b := NewLink(rtA, rtB)
	// Sender-side filter strips the secret policy before transmission —
	// the declassification pattern of §3.2.
	a.Channel().PushFilter(&core.StripPolicyFilter{Pred: func(p core.Policy) bool {
		_, ok := p.(*secretPolicy)
		return ok
	}})
	if err := a.Send(core.NewStringPolicy("declassified", &secretPolicy{Owner: "o"})); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.IsTainted() {
		t.Error("stripped policy crossed the link")
	}
}

func TestFIFOOrderAndPending(t *testing.T) {
	a, b := NewLink(core.NewRuntime(), core.NewRuntime())
	for _, m := range []string{"one", "two", "three"} {
		if err := a.Send(core.NewString(m)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Pending() != 3 {
		t.Errorf("pending = %d", b.Pending())
	}
	for _, want := range []string{"one", "two", "three"} {
		got, err := b.Recv()
		if err != nil || got.Raw() != want {
			t.Errorf("recv = %q, %v; want %q", got.Raw(), err, want)
		}
	}
}

func TestConcurrentSendRecv(t *testing.T) {
	rtA := core.NewRuntime()
	rtB := core.NewRuntime()
	a, b := NewLink(rtA, rtB)
	const n = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(core.NewStringPolicy("m", &secretPolicy{Owner: "o"})); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	received := 0
	go func() {
		defer wg.Done()
		for received < n {
			got, err := b.Recv()
			if errors.Is(err, ErrEmpty) {
				continue
			}
			if err != nil {
				t.Error(err)
				return
			}
			if !got.IsTainted() {
				t.Error("lost annotation under concurrency")
				return
			}
			received++
		}
	}()
	wg.Wait()
	if received != n {
		t.Errorf("received %d of %d", received, n)
	}
}
