package httpd

import (
	"errors"
	"strings"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
	"resin/internal/vfs"
)

type denyHTTPPolicy struct {
	AllowUser string `json:"allow_user"`
}

func (p *denyHTTPPolicy) ExportCheck(ctx *core.Context) error {
	if u, _ := ctx.GetString("user"); u == p.AllowUser {
		return nil
	}
	return errors.New("not allowed")
}

func init() {
	core.RegisterPolicyClass("httpdtest.DenyHTTPPolicy", &denyHTTPPolicy{})
}

func TestRequestParamsAreTainted(t *testing.T) {
	s := NewServer(core.NewRuntime())
	var got core.String
	s.Handle("/echo", func(req *Request, resp *Response) error {
		got = req.Param("q")
		return resp.Write(sanitize.HTMLEscape(got))
	})
	resp, err := s.Do("GET", "/echo", map[string]string{"q": "<b>hi</b>"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasPolicyEverywhere(sanitize.IsUntrusted) {
		t.Error("parameters must be tainted on entry")
	}
	if resp.RawBody() != "&lt;b&gt;hi&lt;/b&gt;" {
		t.Errorf("body = %q", resp.RawBody())
	}
	if got.Raw() != "<b>hi</b>" || resp.Status != 200 {
		t.Errorf("raw=%q status=%d", got.Raw(), resp.Status)
	}
}

func TestRequestParamHelpers(t *testing.T) {
	s := NewServer(core.NewRuntime())
	s.Handle("/h", func(req *Request, resp *Response) error {
		if !req.HasParam("a") || req.HasParam("zz") {
			t.Error("HasParam wrong")
		}
		if req.ParamRaw("a") != "1" {
			t.Error("ParamRaw wrong")
		}
		names := req.ParamNames()
		if len(names) != 2 || names[0] != "a" || names[1] != "b" {
			t.Errorf("names = %v", names)
		}
		if !req.Param("missing").IsEmpty() {
			t.Error("missing param should be empty")
		}
		return nil
	})
	if _, err := s.Do("GET", "/h", map[string]string{"a": "1", "b": "2"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUntrackedRuntimeDoesNotTaint(t *testing.T) {
	s := NewServer(core.NewUntrackedRuntime())
	s.Handle("/e", func(req *Request, resp *Response) error {
		if req.Param("q").IsTainted() {
			t.Error("untracked runtime must not taint")
		}
		return nil
	})
	if _, err := s.Do("GET", "/e", map[string]string{"q": "x"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotFound(t *testing.T) {
	s := NewServer(core.NewRuntime())
	resp, err := s.Do("GET", "/nope", nil, nil)
	if !errors.Is(err, ErrNotFound) || resp.Status != 404 {
		t.Errorf("err=%v status=%d", err, resp.Status)
	}
}

func TestSessionContextReachesPolicies(t *testing.T) {
	s := NewServer(core.NewRuntime())
	p := &denyHTTPPolicy{AllowUser: "alice"}
	secret := core.NewStringPolicy("classified", p)
	s.Handle("/page", func(req *Request, resp *Response) error {
		return resp.Write(secret)
	})
	alice := s.NewSession("alice")
	mallory := s.NewSession("mallory")
	if _, err := s.Do("GET", "/page", nil, alice); err != nil {
		t.Fatalf("alice should pass: %v", err)
	}
	resp, err := s.Do("GET", "/page", nil, mallory)
	if err == nil {
		t.Fatal("mallory must be vetoed")
	}
	if strings.Contains(resp.RawBody(), "classified") {
		t.Error("vetoed content leaked into body")
	}
}

func TestSessionStore(t *testing.T) {
	s := NewServer(core.NewRuntime())
	sess := s.NewSession("u")
	if sess.ID == "" || sess.User != "u" {
		t.Errorf("session = %+v", sess)
	}
	sess.Set("k", 42)
	v, ok := sess.Get("k")
	if !ok || v.(int) != 42 {
		t.Error("session kv wrong")
	}
	if _, ok := sess.Get("missing"); ok {
		t.Error("missing key reported present")
	}
	s2 := s.NewSession("u2")
	if s2.ID == sess.ID {
		t.Error("session IDs must be unique")
	}
}

func TestResponseSplittingBlocked(t *testing.T) {
	s := NewServer(core.NewRuntime())
	s.Handle("/redir", func(req *Request, resp *Response) error {
		return resp.SetHeader("Location", core.Concat(core.NewString("/home?u="), req.Param("u")))
	})
	// Benign redirect passes.
	resp, err := s.Do("GET", "/redir", map[string]string{"u": "alice"}, nil)
	if err != nil {
		t.Fatalf("benign: %v", err)
	}
	if resp.Header("Location") != "/home?u=alice" {
		t.Errorf("header = %q", resp.Header("Location"))
	}
	// CRLF injection via the parameter is blocked.
	if _, err := s.Do("GET", "/redir", map[string]string{"u": "x\r\nSet-Cookie: evil"}, nil); err == nil {
		t.Fatal("splitting must be blocked")
	}
}

func TestOutputBufferingOnResponse(t *testing.T) {
	s := NewServer(core.NewRuntime())
	p := &denyHTTPPolicy{AllowUser: "nobody"}
	authors := core.NewStringPolicy("Alice, Bob", p)
	s.Handle("/paper", func(req *Request, resp *Response) error {
		resp.WriteRaw("<h1>Paper</h1>")
		ch := resp.Channel()
		ch.BeginBuffer()
		if err := resp.Write(authors); err != nil {
			ch.DiscardBuffer()
			resp.WriteRaw("Anonymous")
		} else {
			ch.ReleaseBuffer()
		}
		return nil
	})
	resp, err := s.Do("GET", "/paper", nil, s.NewSession("pc-member"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RawBody() != "<h1>Paper</h1>Anonymous" {
		t.Errorf("body = %q", resp.RawBody())
	}
}

func TestStaticServingHonoursPersistentPolicies(t *testing.T) {
	rt := core.NewRuntime()
	fs := vfs.New(rt)
	fs.MkdirAll("/www", nil)
	// A password accidentally written into a world-readable file in the
	// docroot (the myPHPscripts bug shape).
	pw := core.NewStringPolicy("s3cret", &denyHTTPPolicy{AllowUser: "owner-only"})
	if err := fs.WriteFile("/www/passwords.txt", pw, nil); err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("/www/index.html", core.NewString("<h1>hello</h1>"), nil)

	s := NewServer(rt)
	s.ServeStatic(fs, "/www")

	// Plain file is served.
	resp, err := s.Do("GET", "/index.html", nil, nil)
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	if resp.RawBody() != "<h1>hello</h1>" {
		t.Errorf("index body = %q", resp.RawBody())
	}
	// The password file is blocked by its restored policy.
	resp, err = s.Do("GET", "/passwords.txt", nil, nil)
	if err == nil {
		t.Fatal("password file must be blocked")
	}
	if strings.Contains(resp.RawBody(), "s3cret") {
		t.Error("password leaked")
	}
	if _, ok := core.IsAssertionError(err); !ok {
		t.Errorf("want AssertionError, got %v", err)
	}
}

func TestStaticServingTraversalConfined(t *testing.T) {
	rt := core.NewRuntime()
	fs := vfs.New(rt)
	fs.MkdirAll("/www", nil)
	fs.WriteFile("/secret.txt", core.NewString("outside"), nil)
	s := NewServer(rt)
	s.ServeStatic(fs, "/www")
	resp, err := s.Do("GET", "/../secret.txt", nil, nil)
	if !errors.Is(err, ErrNotFound) || resp.Status != 404 {
		t.Errorf("traversal out of docroot must 404: err=%v status=%d body=%q", err, resp.Status, resp.RawBody())
	}
}

func TestStaticMissingAndDir(t *testing.T) {
	rt := core.NewRuntime()
	fs := vfs.New(rt)
	fs.MkdirAll("/www/sub", nil)
	s := NewServer(rt)
	s.ServeStatic(fs, "/www")
	if _, err := s.Do("GET", "/missing.txt", nil, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
	if _, err := s.Do("GET", "/sub", nil, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("dir: %v", err)
	}
	if _, err := s.Do("POST", "/missing", nil, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("POST does not hit static: %v", err)
	}
}

func TestXSSStrategy1(t *testing.T) {
	s := NewServer(core.NewRuntime())
	s.AddBodyFilter(&XSSFilter{RequireSanitizedMarkers: true})
	s.Handle("/unsafe", func(req *Request, resp *Response) error {
		return resp.Write(core.Concat(core.NewString("<p>"), req.Param("q"), core.NewString("</p>")))
	})
	s.Handle("/safe", func(req *Request, resp *Response) error {
		return resp.Write(core.Concat(core.NewString("<p>"), sanitize.HTMLEscape(req.Param("q")), core.NewString("</p>")))
	})
	if _, err := s.Do("GET", "/unsafe", map[string]string{"q": "<script>evil()</script>"}, nil); err == nil {
		t.Fatal("unsanitized output must be rejected")
	}
	resp, err := s.Do("GET", "/safe", map[string]string{"q": "<script>evil()</script>"}, nil)
	if err != nil {
		t.Fatalf("sanitized output rejected: %v", err)
	}
	if strings.Contains(resp.RawBody(), "<script>") {
		t.Error("escaped output still contains raw script tag")
	}
}

func TestXSSStrategy2(t *testing.T) {
	s := NewServer(core.NewRuntime())
	s.AddBodyFilter(&XSSFilter{RejectTaintedStructure: true})
	s.Handle("/p", func(req *Request, resp *Response) error {
		return resp.Write(core.Concat(core.NewString("<p>"), req.Param("q"), core.NewString("</p>")))
	})
	s.Handle("/js", func(req *Request, resp *Response) error {
		return resp.Write(core.Concat(
			core.NewString("<script>var q='"), req.Param("q"), core.NewString("';</script>")))
	})
	// Tainted plain text in an element: allowed by strategy 2.
	resp, err := s.Do("GET", "/p", map[string]string{"q": "just text"}, nil)
	if err != nil {
		t.Fatalf("plain text rejected: %v", err)
	}
	if resp.RawBody() != "<p>just text</p>" {
		t.Errorf("body = %q", resp.RawBody())
	}
	// Tainted tag injection: rejected.
	if _, err := s.Do("GET", "/p", map[string]string{"q": "<img src=x onerror=evil()>"}, nil); err == nil {
		t.Fatal("tainted tag must be rejected")
	}
	// Any tainted byte inside a script element: rejected.
	if _, err := s.Do("GET", "/js", map[string]string{"q": "x';evil();//"}, nil); err == nil {
		t.Fatal("tainted script content must be rejected")
	}
}

func TestScanTaintedHTMLStructureEdges(t *testing.T) {
	// Untainted script content is fine.
	ok := core.NewString("<script>var x = 1;</script><p>text</p>")
	if err := scanTaintedHTMLStructure(ok); err != nil {
		t.Errorf("untainted page rejected: %v", err)
	}
	// Unclosed script tag consumes to the end without panicking.
	page := core.Concat(core.NewString("<script"), core.NewString(" nothing"))
	if err := scanTaintedHTMLStructure(page); err != nil {
		t.Errorf("unclosed script: %v", err)
	}
	// Case-insensitive script detection.
	evil := core.Concat(core.NewString("<SCRIPT>"), sanitize.Taint(core.NewString("evil()"), "q"), core.NewString("</SCRIPT>"))
	if err := scanTaintedHTMLStructure(evil); err == nil {
		t.Error("uppercase script must still be scanned")
	}
	// Tainted '>' in text position.
	gt := sanitize.Taint(core.NewString(">"), "q")
	if err := scanTaintedHTMLStructure(gt); err == nil {
		t.Error("tainted '>' must be rejected")
	}
	// Tainted delimiter inside a tag.
	attr := core.Concat(core.NewString("<a href="), sanitize.Taint(core.NewString("x>"), "q"))
	if err := scanTaintedHTMLStructure(attr); err == nil {
		t.Error("tainted '>' inside tag must be rejected")
	}
}

func TestAddBodyFilterAppliesToNewResponsesOnly(t *testing.T) {
	s := NewServer(core.NewRuntime())
	s.Handle("/w", func(req *Request, resp *Response) error {
		return resp.Write(sanitize.Taint(core.NewString("<x>"), "q"))
	})
	if _, err := s.Do("GET", "/w", nil, nil); err != nil {
		t.Fatalf("no filter yet: %v", err)
	}
	s.AddBodyFilter(&XSSFilter{RejectTaintedStructure: true})
	if _, err := s.Do("GET", "/w", nil, nil); err == nil {
		t.Fatal("filter must apply to subsequent responses")
	}
}
