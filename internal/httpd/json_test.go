package httpd

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"resin/internal/core"
	"resin/internal/sanitize"
)

func TestEncodeJSONBasics(t *testing.T) {
	got, err := EncodeJSON(map[string]any{
		"name":  "alice",
		"admin": true,
		"age":   30,
		"tags":  []any{"a", int64(2), nil, false},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"admin":true,"age":30,"name":"alice","tags":["a",2,null,false]}`
	if got.Raw() != want {
		t.Errorf("json = %s, want %s", got.Raw(), want)
	}
	// The output must be valid JSON per the standard library.
	var v any
	if err := json.Unmarshal([]byte(got.Raw()), &v); err != nil {
		t.Errorf("output is not valid JSON: %v", err)
	}
}

func TestEncodeJSONEscapesAndPropagates(t *testing.T) {
	evil := sanitize.Taint(core.NewString("x\"},{\"admin\":true"), "q")
	got, err := EncodeJSON(map[string]any{"v": evil})
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(got.Raw()), &v); err != nil {
		t.Fatalf("invalid JSON: %v (%s)", err, got.Raw())
	}
	if v["v"] != "x\"},{\"admin\":true" {
		t.Errorf("value = %q", v["v"])
	}
	if _, ok := v["admin"]; ok {
		t.Error("structure injection succeeded through the encoder")
	}
	// Policies survived into the escaped value bytes.
	if !got.Policies().Any(sanitize.IsUntrusted) {
		t.Error("taint lost in encoding")
	}
	// The encoded output passes the JSON filter: escaping confined the
	// taint to the string value.
	if err := scanTaintedJSONStructure(got); err != nil {
		t.Errorf("encoder output flagged: %v", err)
	}
}

func TestEncodeJSONControlAndAngleBrackets(t *testing.T) {
	got, err := EncodeJSON(core.NewString("a\x01b</script>\n"))
	if err != nil {
		t.Fatal(err)
	}
	raw := got.Raw()
	if strings.Contains(raw, "</script>") {
		t.Errorf("angle brackets must be escaped: %s", raw)
	}
	var v string
	if err := json.Unmarshal([]byte(raw), &v); err != nil {
		t.Fatalf("invalid JSON: %v (%s)", err, raw)
	}
	if v != "a\x01b</script>\n" {
		t.Errorf("round trip = %q", v)
	}
}

func TestEncodeJSONTrackedInt(t *testing.T) {
	p := &sanitize.UntrustedData{Source: "s"}
	got, err := EncodeJSON(core.NewIntPolicy(42, p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw() != "42" || !got.Policies().Any(sanitize.IsUntrusted) {
		t.Errorf("tracked int: %s", got.Describe())
	}
	// Tainted bare number is a value, not structure.
	if err := scanTaintedJSONStructure(got); err != nil {
		t.Errorf("tainted number flagged: %v", err)
	}
}

func TestEncodeJSONUnsupported(t *testing.T) {
	if _, err := EncodeJSON(struct{}{}); err == nil {
		t.Error("unsupported type should error")
	}
	if _, err := EncodeJSON(map[string]any{"k": make(chan int)}); err == nil {
		t.Error("nested unsupported type should error")
	}
}

func TestJSONFilterRejectsHandRolledInjection(t *testing.T) {
	// The vulnerable pattern: string concatenation instead of an encoder.
	evil := sanitize.Taint(core.NewString(`x","admin":true,"y":"`), "q")
	doc := core.Concat(core.NewString(`{"name":"`), evil, core.NewString(`"}`))

	rt := core.NewRuntime()
	ch := core.NewChannel(rt, core.KindHTTP, &JSONFilter{})
	if err := ch.Write(doc); err == nil {
		t.Fatal("hand-rolled JSON with tainted structure must be rejected")
	}
	// Benign value through the same vulnerable code: allowed (strategy 2
	// only fires on structure).
	benign := sanitize.Taint(core.NewString("just a name"), "q")
	doc2 := core.Concat(core.NewString(`{"name":"`), benign, core.NewString(`"}`))
	if err := ch.Write(doc2); err != nil {
		t.Fatalf("benign hand-rolled JSON rejected: %v", err)
	}
}

func TestJSONFilterRejectsTaintedBraces(t *testing.T) {
	evil := sanitize.Taint(core.NewString(`{"cmd":"run"}`), "q")
	rt := core.NewRuntime()
	ch := core.NewChannel(rt, core.KindHTTP, &JSONFilter{})
	if err := ch.Write(evil); err == nil {
		t.Fatal("fully tainted JSON document must be rejected")
	}
}

// Property: whatever the payload, EncodeJSON output is valid JSON whose
// decoded value equals the payload, and it always passes the JSON filter.
func TestQuickEncodeJSONSafety(t *testing.T) {
	f := func(payload string) bool {
		evil := sanitize.Taint(core.NewString(payload), "q")
		got, err := EncodeJSON(map[string]any{"v": evil})
		if err != nil {
			return false
		}
		var v map[string]string
		if err := json.Unmarshal([]byte(got.Raw()), &v); err != nil {
			return false
		}
		if v["v"] != payload {
			return false
		}
		return scanTaintedJSONStructure(got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
