package httpd

import (
	"fmt"
	"strings"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// XSSFilter is the cross-site scripting assertion of §5.3, attached to the
// HTML output channel. Both of the paper's strategies are available:
//
//   - RequireSanitizedMarkers (strategy 1): reject output containing
//     characters with UntrustedData but not HTMLSanitized — the data never
//     went through the HTML escaping function.
//
//   - RejectTaintedStructure (strategy 2): scan the HTML and reject
//     untrusted characters in structural positions — a tainted '<' or '>'
//     (tag injection) or any tainted byte inside a <script> element (the
//     "JavaScript portions of the HTML" the paper checks).
type XSSFilter struct {
	RequireSanitizedMarkers bool
	RejectTaintedStructure  bool
}

// XSSError reports a rejected cross-site scripting flow.
type XSSError struct {
	Strategy string
	Detail   string
	Offset   int
}

func (e *XSSError) Error() string {
	return fmt.Sprintf("httpd: XSS assertion (%s) rejected output at byte %d: %s",
		e.Strategy, e.Offset, e.Detail)
}

// FilterWrite checks one chunk of outgoing HTML.
func (f *XSSFilter) FilterWrite(ch *core.Channel, data core.String, off int64) (core.String, error) {
	if f.RequireSanitizedMarkers {
		if start, _, found := sanitize.UnsanitizedHTML(data); found {
			return data, &core.AssertionError{
				Context: ch.Context(), Op: "export_check",
				Err: &XSSError{Strategy: "sanitized-markers", Offset: start,
					Detail: "untrusted data reached HTML output without passing the HTML sanitizer"},
			}
		}
	}
	if f.RejectTaintedStructure {
		if err := scanTaintedHTMLStructure(data); err != nil {
			return data, &core.AssertionError{Context: ch.Context(), Op: "export_check", Err: err}
		}
	}
	return data, nil
}

// scanTaintedHTMLStructure walks the HTML byte-by-byte with a small state
// machine. Untrusted bytes are rejected when they are tag delimiters or
// appear inside a script element.
func scanTaintedHTMLStructure(data core.String) error {
	raw := data.Raw()
	const (
		stText = iota
		stTag
		stScript
	)
	state := stText
	tainted := func(i int) bool {
		return data.PoliciesAt(i).Any(sanitize.IsUntrusted)
	}
	i := 0
	for i < len(raw) {
		c := raw[i]
		switch state {
		case stText:
			if c == '<' {
				if tainted(i) {
					return &XSSError{Strategy: "tainted-structure", Offset: i,
						Detail: "untrusted '<' opens an HTML tag"}
				}
				if hasFoldPrefix(raw[i:], "<script") {
					state = stScript
					// Skip to the end of the opening tag.
					j := strings.IndexByte(raw[i:], '>')
					if j < 0 {
						i = len(raw)
						continue
					}
					i += j + 1
					continue
				}
				state = stTag
			} else if c == '>' && tainted(i) {
				return &XSSError{Strategy: "tainted-structure", Offset: i,
					Detail: "untrusted '>' closes an HTML tag"}
			}
			i++
		case stTag:
			if (c == '<' || c == '>') && tainted(i) {
				return &XSSError{Strategy: "tainted-structure", Offset: i,
					Detail: "untrusted tag delimiter inside HTML tag"}
			}
			if c == '>' {
				state = stText
			}
			i++
		case stScript:
			if hasFoldPrefix(raw[i:], "</script") {
				state = stText
				j := strings.IndexByte(raw[i:], '>')
				if j < 0 {
					i = len(raw)
					continue
				}
				i += j + 1
				continue
			}
			if tainted(i) {
				return &XSSError{Strategy: "tainted-structure", Offset: i,
					Detail: "untrusted byte inside <script> element"}
			}
			i++
		}
	}
	return nil
}

// hasFoldPrefix reports whether s begins with prefix, ASCII
// case-insensitively.
func hasFoldPrefix(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	return strings.EqualFold(s[:len(prefix)], prefix)
}
