package httpd

import (
	"fmt"

	"resin/internal/core"
	"resin/internal/lineage"
)

// AuditHandler builds the standard /audit endpoint (docs/LINEAGE.md §5):
// resolve picks the tracked value to audit from the request and returns
// a short label naming it; the handler replies with the value's recorded
// lineage, one edge per line in lineage.RenderText form, preceded by a
// summary line "audit <label>: <n> edges".
//
// The endpoint is diagnostic: it answers 404 while lineage recording is
// disabled (there is nothing to show and the route should not probe as
// live), and 404 with the resolver's error text when the value cannot
// be resolved. Resolving the value typically re-reads it through the
// instrumented boundaries, so the audit query's own crossings appear at
// the tail of the trace — that is truthful, not an artifact.
func AuditHandler(resolve func(req *Request) (core.String, string, error)) Handler {
	return func(req *Request, resp *Response) error {
		if !lineage.Enabled() {
			resp.Status = 404
			return resp.WriteRaw("audit: lineage recording is disabled\n")
		}
		v, label, err := resolve(req)
		if err != nil {
			resp.Status = 404
			return resp.WriteRaw(fmt.Sprintf("audit: %v\n", err))
		}
		edges := lineage.Trace(v)
		if err := resp.WriteRaw(fmt.Sprintf("audit %s: %d edges\n", label, len(edges))); err != nil {
			return err
		}
		return resp.WriteRaw(lineage.RenderText(edges))
	}
}
