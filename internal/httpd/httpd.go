// Package httpd is the web-server substrate of the RESIN reproduction: an
// in-process request/response model with RESIN boundaries at the edges.
//
// Requests enter through an input boundary that taints every parameter
// with an UntrustedData policy (the moment data enters the runtime).
// Responses leave through an HTML output channel whose filter chain runs
// the default export check, the HTTP response-splitting defense, and
// (when the application enables it) the cross-site scripting assertions
// of §5.3. The server is also "RESIN-aware" in the sense of §3.4.1: when
// it serves a static file, the file's persistent policies are
// de-serialized and checked against the HTTP boundary, so a password
// accidentally stored in a world-readable file cannot be fetched with a
// browser.
//
// The transport is simulated in-process — requests are Go calls — because
// every assertion the paper evaluates happens at the channel boundary, not
// on the wire.
package httpd

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"resin/internal/core"
	"resin/internal/sanitize"
	"resin/internal/vfs"
)

// Session is per-user server-side state (the paper's applications recall
// session state while generating pages).
type Session struct {
	ID   string
	User string
	mu   sync.Mutex
	data map[string]any
}

// Set stores a session value.
func (s *Session) Set(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		s.data = make(map[string]any)
	}
	s.data[key] = v
}

// Get returns a session value.
func (s *Session) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	return v, ok
}

// Request is one in-flight HTTP request.
type Request struct {
	Method  string
	Path    string
	Session *Session
	rt      *core.Runtime
	params  map[string]core.String
	input   *core.Channel
}

// Param returns a request parameter as tracked (tainted) data; absent
// parameters return the empty string.
func (r *Request) Param(name string) core.String { return r.params[name] }

// ParamRaw returns the raw text of a parameter.
func (r *Request) ParamRaw(name string) string { return r.params[name].Raw() }

// HasParam reports whether the parameter was supplied.
func (r *Request) HasParam(name string) bool {
	_, ok := r.params[name]
	return ok
}

// ParamNames returns the sorted names of supplied parameters.
func (r *Request) ParamNames() []string {
	out := make([]string, 0, len(r.params))
	for k := range r.params {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Response accumulates one response: headers flow through a
// splitting-guarded channel, the body through the HTML output channel.
type Response struct {
	Status   int
	body     *core.Channel
	headerCh *core.Channel
	mu       sync.Mutex
	headers  map[string]string
}

// Body returns the tracked response body released so far.
func (r *Response) Body() core.String { return r.body.Output() }

// RawBody returns the raw text of the response body.
func (r *Response) RawBody() string { return r.body.RawOutput() }

// Channel returns the body output channel; applications annotate its
// context (e.g. Figure 5's client_sock.__filter.context['user'] = u) and
// use its output-buffering API (§5.5).
func (r *Response) Channel() *core.Channel { return r.body }

// Write sends tracked data through the HTML output boundary.
func (r *Response) Write(data core.String) error { return r.body.Write(data) }

// WriteRaw sends untracked text through the boundary.
func (r *Response) WriteRaw(s string) error { return r.body.WriteRaw(s) }

// SetHeader sets a response header; the value crosses the header channel,
// which rejects CR/LF sequences derived from untrusted input (the HTTP
// response-splitting defense of §3.2/§5.4).
func (r *Response) SetHeader(name string, value core.String) error {
	if err := r.headerCh.Write(value); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.headers[name] = value.Raw()
	return nil
}

// Header returns a previously set header value.
func (r *Response) Header(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.headers[name]
}

// Handler handles one request.
type Handler func(req *Request, resp *Response) error

// Server routes requests to handlers over a RESIN runtime.
type Server struct {
	rt *core.Runtime

	mu       sync.Mutex
	routes   map[string]Handler
	sessions map[string]*Session
	nextSID  int

	staticFS   *vfs.FS
	staticRoot string

	// configureBody is applied to each response body channel; the server
	// installs the default filters and applications may add more.
	bodyFilters []core.Filter

	// taintFilters caches one input taint filter per parameter name, so
	// every request's "http:<name>" parameter shares a single
	// UntrustedData policy object and one interned policy set — the
	// input side of the tracking hot path stays on pointer comparisons
	// across requests. Bounded by maxTaintFilters against unbounded
	// parameter-name cardinality. Guarded by its own RWMutex rather
	// than s.mu: the lookup runs once per parameter per request and is
	// a pure read after warm-up, so it must not contend with the
	// session/route lock.
	taintMu      sync.RWMutex
	taintFilters map[string]*core.TaintReadFilter
}

// maxTaintFilters bounds the per-parameter-name taint filter cache.
const maxTaintFilters = 1024

// NewServer returns a server bound to rt with the default boundary
// filters: export check plus the response-splitting guard on headers.
func NewServer(rt *core.Runtime) *Server {
	return &Server{
		rt:           rt,
		routes:       make(map[string]Handler),
		sessions:     make(map[string]*Session),
		taintFilters: make(map[string]*core.TaintReadFilter),
		bodyFilters: []core.Filter{
			core.ExportCheckFilter{},
		},
	}
}

// Runtime returns the server's runtime.
func (s *Server) Runtime() *core.Runtime { return s.rt }

// Handle registers a handler for a path.
func (s *Server) Handle(path string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes[path] = h
}

// AddBodyFilter appends a filter to every future response body channel —
// how an application attaches the XSS assertion (§5.3) to its HTML output.
func (s *Server) AddBodyFilter(f core.Filter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bodyFilters = append(s.bodyFilters, f)
}

// ServeStatic exposes fs under docroot for GET requests that match no
// route — like Apache serving files next to the application. The serving
// path honours persistent policies (§3.4.1).
func (s *Server) ServeStatic(fs *vfs.FS, docroot string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staticFS = fs
	s.staticRoot = docroot
}

// NewSession creates a server-side session for user.
func (s *Server) NewSession(user string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSID++
	sess := &Session{ID: fmt.Sprintf("sid%04d", s.nextSID), User: user}
	s.sessions[sess.ID] = sess
	return sess
}

// ErrNotFound is returned by Do when no route or static file matches.
var ErrNotFound = errors.New("httpd: not found")

// Do runs one request through the server: parameters are tainted at the
// input boundary, the matched handler runs, and (resp, err) capture
// whatever the handler produced — including assertion errors from the
// output boundary. sess may be nil for anonymous requests.
func (s *Server) Do(method, path string, params map[string]string, sess *Session) (*Response, error) {
	req := &Request{
		Method:  method,
		Path:    path,
		Session: sess,
		rt:      s.rt,
		params:  make(map[string]core.String, len(params)),
		input:   core.NewChannel(s.rt, core.KindHTTP),
	}
	req.input.Context().Set("op", "request-input")
	// Input boundary: every parameter enters through the request's input
	// channel, whose read filter taints it (§5.3: "annotates untrusted
	// input data with an UntrustedData policy"). The filter is installed
	// per parameter so the taint records which parameter it came from.
	for name, raw := range params {
		req.input.SetFilters(s.taintFilter(name))
		data, err := req.input.Read(core.NewString(raw))
		if err != nil {
			return nil, fmt.Errorf("httpd: input boundary: %w", err)
		}
		req.params[name] = data
	}

	resp := s.newResponse(sess)
	s.mu.Lock()
	h, ok := s.routes[path]
	staticFS, staticRoot := s.staticFS, s.staticRoot
	s.mu.Unlock()
	if ok {
		err := h(req, resp)
		return resp, err
	}
	if staticFS != nil && method == "GET" {
		err := s.serveStatic(staticFS, staticRoot, path, resp)
		return resp, err
	}
	resp.Status = 404
	return resp, ErrNotFound
}

// taintFilter returns the shared input taint filter for a parameter
// name, creating and caching it on first use.
func (s *Server) taintFilter(name string) *core.TaintReadFilter {
	s.taintMu.RLock()
	tf, ok := s.taintFilters[name]
	full := len(s.taintFilters) >= maxTaintFilters
	s.taintMu.RUnlock()
	if ok {
		return tf
	}
	// Over the cap, parameter names are attacker-influenced churn:
	// build a plain one-shot filter — outside any lock, so churned
	// names don't serialize concurrent requests — rather than
	// interning a policy set that will never recur.
	oneShot := func() *core.TaintReadFilter {
		return &core.TaintReadFilter{
			Policies: []core.Policy{&sanitize.UntrustedData{Source: "http:" + name}},
		}
	}
	if full {
		return oneShot()
	}
	s.taintMu.Lock()
	if tf, ok := s.taintFilters[name]; ok {
		s.taintMu.Unlock()
		return tf
	}
	if len(s.taintFilters) >= maxTaintFilters {
		s.taintMu.Unlock()
		return oneShot()
	}
	tf = core.NewTaintReadFilter(&sanitize.UntrustedData{Source: "http:" + name})
	s.taintFilters[name] = tf
	s.taintMu.Unlock()
	return tf
}

func (s *Server) newResponse(sess *Session) *Response {
	s.mu.Lock()
	filters := append([]core.Filter(nil), s.bodyFilters...)
	s.mu.Unlock()
	body := core.NewChannel(s.rt, core.KindHTTP, filters...)
	if sess != nil {
		body.Context().Set("user", sess.User)
		body.Context().Set("session", sess.ID)
	}
	headerCh := core.NewChannel(s.rt, core.KindHTTP,
		&core.RejectSequenceFilter{Sequence: "\r\n", TaintedOnly: true, IsTainted: sanitize.IsUntrusted},
		core.ExportCheckFilter{},
	)
	if sess != nil {
		headerCh.Context().Set("user", sess.User)
	}
	return &Response{Status: 200, body: body, headerCh: headerCh, headers: make(map[string]string)}
}

// serveStatic reads a file through the VFS (de-serializing its persistent
// policies) and writes it to the HTTP boundary, where export checks run.
// This is the mod_php change of §4: 49 lines that made Apache invoke
// policy objects for all static files it serves.
func (s *Server) serveStatic(fs *vfs.FS, docroot, reqPath string, resp *Response) error {
	full := vfs.Resolve(docroot + "/" + reqPath)
	if !strings.HasPrefix(full, vfs.Resolve(docroot)) {
		resp.Status = 404
		return ErrNotFound
	}
	info, err := fs.Stat(full)
	if err != nil || info.IsDir {
		resp.Status = 404
		return ErrNotFound
	}
	ctx := core.NewContext(core.KindFile)
	if u, ok := resp.body.Context().GetString("user"); ok {
		ctx.Set("user", u)
	}
	data, err := fs.ReadFile(full, ctx)
	if err != nil {
		resp.Status = 403
		return err
	}
	if err := resp.Write(data); err != nil {
		resp.Status = 403
		return err
	}
	return nil
}
