package httpd

import (
	"fmt"
	"sort"
	"strconv"

	"resin/internal/core"
	"resin/internal/sanitize"
)

// §5.4 of the paper: "much like in SQL injection, an adversary may be
// able to craft an input string that changes the structure of the JSON's
// JavaScript data structure, or worse yet, include client-side code as
// part of the data structure. Web applications can use RESIN's data
// tracking mechanisms to avoid these pitfalls as they would for SQL
// injection."
//
// Two pieces implement that here: EncodeJSON, a tracked JSON encoder
// whose escaping keeps untrusted bytes confined to string values while
// propagating their policies; and JSONFilter, the output-channel
// assertion that rejects untrusted bytes in structural positions of the
// final JSON text, whatever code path produced it.

// EncodeJSON renders a value as tracked JSON. Supported values: nil,
// bool, int/int64, string, core.String (policies propagate into the
// escaped string value), []any, and map[string]any (keys emitted in
// sorted order for determinism).
func EncodeJSON(v any) (core.String, error) {
	var b core.Builder
	if err := encodeJSON(&b, v); err != nil {
		return core.String{}, err
	}
	return b.String(), nil
}

func encodeJSON(b *core.Builder, v any) error {
	switch x := v.(type) {
	case nil:
		b.AppendRaw("null")
	case bool:
		if x {
			b.AppendRaw("true")
		} else {
			b.AppendRaw("false")
		}
	case int:
		b.AppendRaw(strconv.Itoa(x))
	case int64:
		b.AppendRaw(strconv.FormatInt(x, 10))
	case core.Int:
		b.Append(x.ToString())
	case string:
		encodeJSONString(b, core.NewString(x))
	case core.String:
		encodeJSONString(b, x)
	case []any:
		b.AppendRaw("[")
		for i, e := range x {
			if i > 0 {
				b.AppendRaw(",")
			}
			if err := encodeJSON(b, e); err != nil {
				return err
			}
		}
		b.AppendRaw("]")
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.AppendRaw("{")
		for i, k := range keys {
			if i > 0 {
				b.AppendRaw(",")
			}
			encodeJSONString(b, core.NewString(k))
			b.AppendRaw(":")
			if err := encodeJSON(b, x[k]); err != nil {
				return err
			}
		}
		b.AppendRaw("}")
	default:
		return fmt.Errorf("httpd: EncodeJSON: unsupported type %T", v)
	}
	return nil
}

// encodeJSONString emits a JSON string literal; the delimiting quotes are
// application output, escaped content bytes inherit the source policies.
func encodeJSONString(b *core.Builder, s core.String) {
	b.AppendRaw(`"`)
	for i := 0; i < s.Len(); i++ {
		c, ps := s.ByteAt(i)
		switch {
		case c == '"' || c == '\\':
			b.AppendBytePolicies('\\', ps)
			b.AppendBytePolicies(c, ps)
		case c == '\n':
			b.AppendBytePolicies('\\', ps)
			b.AppendBytePolicies('n', ps)
		case c == '\r':
			b.AppendBytePolicies('\\', ps)
			b.AppendBytePolicies('r', ps)
		case c == '\t':
			b.AppendBytePolicies('\\', ps)
			b.AppendBytePolicies('t', ps)
		case c == '<' || c == '>': // keep </script> out of inline JSON
			for _, e := range []byte(fmt.Sprintf(`\u%04x`, c)) {
				b.AppendBytePolicies(e, ps)
			}
		case c < 0x20:
			for _, e := range []byte(fmt.Sprintf(`\u%04x`, c)) {
				b.AppendBytePolicies(e, ps)
			}
		default:
			b.AppendBytePolicies(c, ps)
		}
	}
	b.AppendRaw(`"`)
}

// JSONError reports a rejected JSON structure flow.
type JSONError struct {
	Offset int
	Detail string
}

func (e *JSONError) Error() string {
	return fmt.Sprintf("httpd: JSON assertion rejected output at byte %d: %s", e.Offset, e.Detail)
}

// JSONFilter is the JSON analogue of the strategy-2 SQL defense: attached
// to a JSON output channel, it rejects untrusted bytes that land in the
// structure of the document — anything outside a string value, plus
// quotes and backslashes inside string values (which would let the value
// escape into structure).
type JSONFilter struct{}

// FilterWrite scans one chunk of outgoing JSON.
func (f *JSONFilter) FilterWrite(ch *core.Channel, data core.String, off int64) (core.String, error) {
	if err := scanTaintedJSONStructure(data); err != nil {
		return data, &core.AssertionError{Context: ch.Context(), Op: "export_check", Err: err}
	}
	return data, nil
}

func scanTaintedJSONStructure(data core.String) error {
	raw := data.Raw()
	tainted := func(i int) bool {
		return data.PoliciesAt(i).Any(sanitize.IsUntrusted)
	}
	inString := false
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if inString {
			switch c {
			case '\\':
				// The escape pair is fine whoever wrote it — an escaped
				// quote cannot terminate the string.
				i++
			case '"':
				if tainted(i) {
					return &JSONError{Offset: i, Detail: "untrusted quote terminates a JSON string"}
				}
				inString = false
			}
			continue
		}
		switch c {
		case '"':
			if tainted(i) {
				return &JSONError{Offset: i, Detail: "untrusted quote opens a JSON string"}
			}
			inString = true
		case '{', '}', '[', ']', ':', ',':
			if tainted(i) {
				return &JSONError{Offset: i, Detail: fmt.Sprintf("untrusted %q in JSON structure", string(c))}
			}
		default:
			// Bare values (numbers, true/false/null) and whitespace may
			// be tainted; they cannot change the structure.
		}
	}
	return nil
}
