package resinsql

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"

	"resin/internal/core"
	"resin/internal/wire"
)

// NetPrefix marks a data source name as a wire-server address rather
// than a registry key or file path: "net:host:port" connects over TCP
// to a resin-server (or a follower), speaking the framed protocol in
// internal/wire. Policy annotations cross the socket in the canonical
// EncodeSpans form and are re-interned on arrival, so tracked scanning
// (the String / Int wrappers) works identically to the in-process DSNs.
const NetPrefix = "net:"

// openNetConn dials a wire server for a "net:host:port" DSN.
func openNetConn(name string) (driver.Conn, error) {
	addr := name[len(NetPrefix):]
	if addr == "" {
		return nil, fmt.Errorf("resinsql: %q DSN wants %q", name, NetPrefix+"host:port")
	}
	wc, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &netConn{wc: wc}, nil
}

// netConn is one database/sql connection backed by one wire connection.
// database/sql's pool maps 1:1 onto server sessions: SetMaxOpenConns
// bounds the TCP connections, and a poisoned wire connection surfaces
// as driver.ErrBadConn so the pool discards and redials.
type netConn struct {
	wc   *wire.Conn
	inTx bool
}

// badConn maps a poisoned-transport error onto driver.ErrBadConn;
// server-side errors (*wire.RemoteError) pass through — the connection
// stays usable after those.
func badConn(err error) error {
	if errors.Is(err, wire.ErrConnClosed) {
		return driver.ErrBadConn
	}
	return err
}

func (c *netConn) Close() error { return c.wc.Close() }

// IsValid implements driver.Validator: a poisoned connection never
// returns to the pool.
func (c *netConn) IsValid() bool { return !c.wc.Closed() }

// CheckNamedValue admits tracked values unconverted, like the
// in-process connection.
func (c *netConn) CheckNamedValue(nv *driver.NamedValue) error { return checkNamedValue(nv) }

// QueryContext implements driver.QueryerContext; the ctx deadline
// becomes the socket deadline and cancellation interrupts a blocked
// round trip.
func (c *netConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	res, err := c.wc.QueryContext(ctx, core.NewString(query), namedAnyArgs(args)...)
	if err != nil {
		return nil, badConn(err)
	}
	return &rows{res: res}, nil
}

// ExecContext implements driver.ExecerContext.
func (c *netConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	affected, err := c.wc.ExecContext(ctx, core.NewString(query), namedAnyArgs(args)...)
	if err != nil {
		return nil, badConn(err)
	}
	return result{affected: int64(affected)}, nil
}

// Prepare implements driver.Conn.
func (c *netConn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext: the statement is
// compiled and held server-side, scoped to this connection.
func (c *netConn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	st, err := c.wc.PrepareContext(ctx, core.NewString(query))
	if err != nil {
		return nil, badConn(err)
	}
	return &netStmt{st: st}, nil
}

// Begin implements driver.Conn.
func (c *netConn) Begin() (driver.Tx, error) {
	return c.BeginTx(context.Background(), driver.TxOptions{})
}

// BeginTx implements driver.ConnBeginTx, with the same isolation rules
// as the in-process connection.
func (c *netConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if lvl := sql.IsolationLevel(opts.Isolation); lvl != sql.LevelDefault && lvl != sql.LevelSerializable {
		return nil, fmt.Errorf("resinsql: isolation level %s not supported (transactions are serializable)", lvl)
	}
	if opts.ReadOnly {
		return nil, errors.New("resinsql: read-only transactions are not supported")
	}
	if c.inTx {
		return nil, errors.New("resinsql: transaction already open on this connection")
	}
	if err := c.wc.BeginContext(ctx); err != nil {
		return nil, badConn(err)
	}
	c.inTx = true
	return &netTx{c: c}, nil
}

// netTx adapts the connection's server-side transaction to driver.Tx.
type netTx struct{ c *netConn }

func (t *netTx) Commit() error {
	t.c.inTx = false
	return badConn(t.c.wc.Commit())
}

func (t *netTx) Rollback() error {
	t.c.inTx = false
	return badConn(t.c.wc.Rollback())
}

// netStmt adapts a server-side prepared statement to driver.Stmt.
type netStmt struct{ st *wire.Stmt }

func (s *netStmt) Close() error { return badConn(s.st.Close()) }

func (s *netStmt) NumInput() int { return s.st.NumArgs() }

func (s *netStmt) CheckNamedValue(nv *driver.NamedValue) error { return checkNamedValue(nv) }

func (s *netStmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.execContext(context.Background(), valuesToNamed(args))
}

func (s *netStmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.queryContext(context.Background(), valuesToNamed(args))
}

// QueryContext implements driver.StmtQueryContext.
func (s *netStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.queryContext(ctx, args)
}

// ExecContext implements driver.StmtExecContext.
func (s *netStmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.execContext(ctx, args)
}

func (s *netStmt) queryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	res, err := s.st.QueryContext(ctx, namedAnyArgs(args)...)
	if err != nil {
		return nil, badConn(err)
	}
	return &rows{res: res}, nil
}

func (s *netStmt) execContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	affected, err := s.st.ExecContext(ctx, namedAnyArgs(args)...)
	if err != nil {
		return nil, badConn(err)
	}
	return result{affected: int64(affected)}, nil
}

// valuesToNamed lifts contextless driver values into named values.
func valuesToNamed(args []driver.Value) []driver.NamedValue {
	if len(args) == 0 {
		return nil
	}
	out := make([]driver.NamedValue, len(args))
	for i, a := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return out
}
