package resinsql_test

import (
	"context"
	"database/sql"
	"net"
	"testing"
	"time"

	"resin/internal/core"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
	"resin/internal/wire"
	"resin/resinsql"
)

// openNet serves a fresh tracked database over TCP and opens it through
// database/sql with a net: DSN.
func openNet(t *testing.T) (*sql.DB, *sqldb.DB) {
	t.Helper()
	rdb := sqldb.Open(core.NewRuntime())
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(rdb, wire.Config{})
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})
	db, err := sql.Open(resinsql.DriverName, resinsql.NetPrefix+lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() }) //nolint:errcheck
	return db, rdb
}

// TestNetDSNRoundTripPreservesPolicies: the driver acceptance criterion
// over TCP — a tracked bound argument crosses the socket, persists, and
// returns with its policy set intact.
func TestNetDSNRoundTripPreservesPolicies(t *testing.T) {
	db, rdb := openNet(t)
	if _, err := db.Exec("CREATE TABLE users (name TEXT, bio TEXT)"); err != nil {
		t.Fatal(err)
	}
	tainted := sanitize.Taint(core.NewString("mallory"), "form:name")
	if _, err := db.Exec("INSERT INTO users (name, bio) VALUES (?, ?)", tainted, "over tcp"); err != nil {
		t.Fatal(err)
	}

	var got resinsql.String
	var bio string
	if err := db.QueryRow("SELECT name, bio FROM users").Scan(&got, &bio); err != nil {
		t.Fatal(err)
	}
	if !got.Valid || got.V.Raw() != "mallory" || bio != "over tcp" {
		t.Fatalf("scanned %q (valid=%v), bio %q", got.V.Raw(), got.Valid, bio)
	}
	if !got.V.IsTainted() {
		t.Fatal("taint lost across the net: DSN")
	}

	// The scanned policy set equals the in-process one, byte for byte.
	inProc, err := rdb.QueryRaw("SELECT name FROM users")
	if err != nil {
		t.Fatal(err)
	}
	wantAnn, err := core.EncodeSpans(inProc.Get(0, "name").Str)
	if err != nil {
		t.Fatal(err)
	}
	gotAnn, err := core.EncodeSpans(got.V)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotAnn) != string(wantAnn) {
		t.Fatalf("annotation mismatch:\n  got  %s\n  want %s", gotAnn, wantAnn)
	}
}

// TestNetDSNPreparedNamedAndContext exercises the context driver
// interfaces end to end: PrepareContext, named arguments, StmtQuery-
// Context, and transactions via BeginTx.
func TestNetDSNPreparedNamedAndContext(t *testing.T) {
	db, _ := openNet(t)
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, "CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := db.PrepareContext(ctx, "INSERT INTO kv (k, v) VALUES (:key, :val)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close() //nolint:errcheck
	if _, err := ins.ExecContext(ctx, sql.Named("val", 7), sql.Named("key", "seven")); err != nil {
		t.Fatal(err)
	}

	tx, err := db.BeginTx(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecContext(ctx, "INSERT INTO kv (k, v) VALUES (?, ?)", "eight", 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var v int
	err = db.QueryRowContext(ctx, "SELECT v FROM kv WHERE k = :k", sql.Named("k", "seven")).Scan(&v)
	if err != nil || v != 7 {
		t.Fatalf("named query: v=%d err=%v", v, err)
	}
	err = db.QueryRowContext(ctx, "SELECT v FROM kv WHERE k = ?", "eight").Scan(&v)
	if err != nil || v != 8 {
		t.Fatalf("tx insert: v=%d err=%v", v, err)
	}

	// Weaker isolation must be refused, not silently upgraded.
	if _, err := db.BeginTx(ctx, &sql.TxOptions{Isolation: sql.LevelReadCommitted}); err == nil {
		t.Fatal("read-committed BeginTx accepted")
	}
}

// TestNetDSNContextCanceled: a canceled context fails the call before
// (or while) it touches the socket.
func TestNetDSNContextCanceled(t *testing.T) {
	db, _ := openNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecContext(ctx, "CREATE TABLE t (a INT)"); err == nil {
		t.Fatal("exec with canceled ctx succeeded")
	}
}

// TestLocalContextInterfaces: the in-process connection also honors the
// context driver interfaces (satellite parity with the net path).
func TestLocalContextInterfaces(t *testing.T) {
	db, _ := open(t, "ctxlocal")
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, "CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, "INSERT INTO kv (k, v) VALUES (:k, :v)",
		sql.Named("k", "a"), sql.Named("v", 1)); err != nil {
		t.Fatal(err)
	}
	var v int
	if err := db.QueryRowContext(ctx, "SELECT v FROM kv WHERE k = :k", sql.Named("k", "a")).Scan(&v); err != nil || v != 1 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := db.ExecContext(canceled, "INSERT INTO kv (k, v) VALUES ('b', 2)"); err == nil {
		t.Fatal("exec with canceled ctx succeeded")
	}
	if _, err := db.BeginTx(ctx, &sql.TxOptions{ReadOnly: true}); err == nil {
		t.Fatal("read-only BeginTx accepted")
	}
}
