package resinsql_test

import (
	"database/sql"
	"path/filepath"
	"testing"

	"resin/internal/core"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
	"resin/resinsql"
)

// open binds a fresh tracked RESIN database under name and opens it
// through database/sql.
func open(t *testing.T, name string) (*sql.DB, *sqldb.DB) {
	t.Helper()
	rdb := sqldb.Open(core.NewRuntime())
	resinsql.Bind(name, rdb)
	t.Cleanup(func() { resinsql.Unbind(name) })
	db, err := sql.Open(resinsql.DriverName, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, rdb
}

// TestDriverRoundTripPreservesPolicies is the acceptance-criterion
// round trip: Register → sql.Open → Prepare → Query through the
// standard database/sql API, with a tracked bound argument whose
// policy annotation must survive into the shadow policy column and
// back onto the scanned result.
func TestDriverRoundTripPreservesPolicies(t *testing.T) {
	db, _ := open(t, "roundtrip")

	if _, err := db.Exec("CREATE TABLE users (name TEXT, bio TEXT)"); err != nil {
		t.Fatal(err)
	}

	tainted := sanitize.Taint(core.NewString("alice"), "form:name")
	ins, err := db.Prepare("INSERT INTO users (name, bio) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	res, err := ins.Exec(tainted, "likes systems")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res.RowsAffected(); err != nil || n != 1 {
		t.Fatalf("RowsAffected = %d, %v", n, err)
	}

	sel, err := db.Prepare("SELECT name, bio FROM users WHERE name = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	rows, err := sel.Query(tainted)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no row came back")
	}
	var name resinsql.String
	var bio string
	if err := rows.Scan(&name, &bio); err != nil {
		t.Fatal(err)
	}
	if name.V.Raw() != "alice" || bio != "likes systems" {
		t.Fatalf("got (%q, %q)", name.V.Raw(), bio)
	}
	if !name.V.IsTainted() || !name.V.Policies().Any(sanitize.IsUntrusted) {
		t.Error("tracked cell lost its UntrustedData policy across the driver boundary")
	}
	if rows.Next() {
		t.Error("more than one row")
	}
}

// TestDriverPlainValuesStayPlain checks the policy-oblivious path:
// untracked arguments and untainted cells cross the boundary as plain
// driver values, scannable by vanilla destinations.
func TestDriverPlainValuesStayPlain(t *testing.T) {
	db, _ := open(t, "plain")
	if _, err := db.Exec("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", "answer", 42); err != nil {
		t.Fatal(err)
	}
	var k string
	var v int64
	if err := db.QueryRow("SELECT k, v FROM kv WHERE k = ?", "answer").Scan(&k, &v); err != nil {
		t.Fatal(err)
	}
	if k != "answer" || v != 42 {
		t.Fatalf("got (%q, %d)", k, v)
	}
}

// TestDriverNullDistinguished: the scanner wrappers report SQL NULL
// via Valid instead of conflating it with the zero value.
func TestDriverNullDistinguished(t *testing.T) {
	db, _ := open(t, "nulls")
	if _, err := db.Exec("CREATE TABLE t (a TEXT, b TEXT, n INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (a, b, n) VALUES (?, ?, ?)", nil, "", nil); err != nil {
		t.Fatal(err)
	}
	var a, b resinsql.String
	var n resinsql.Int
	if err := db.QueryRow("SELECT a, b, n FROM t").Scan(&a, &b, &n); err != nil {
		t.Fatal(err)
	}
	if a.Valid || a.V.Raw() != "" {
		t.Errorf("NULL text: Valid=%v V=%q", a.Valid, a.V.Raw())
	}
	if !b.Valid || b.V.Raw() != "" {
		t.Errorf("empty text: Valid=%v V=%q", b.Valid, b.V.Raw())
	}
	if n.Valid || n.V.Value() != 0 {
		t.Errorf("NULL int: Valid=%v V=%d", n.Valid, n.V.Value())
	}
}

// TestDriverArityEnforced: NumInput lets database/sql reject wrong
// argument counts before the driver executes anything.
func TestDriverArityEnforced(t *testing.T) {
	db, _ := open(t, "arity")
	if _, err := db.Exec("CREATE TABLE t (a TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (a) VALUES (?)"); err == nil {
		t.Error("missing bound argument was accepted")
	}
	if _, err := db.Exec("INSERT INTO t (a) VALUES (?)", "x", "y"); err == nil {
		t.Error("extra bound argument was accepted")
	}
}

// TestDriverTransactions drives sqldb's speculative transactions
// through the database/sql Tx API.
func TestDriverTransactions(t *testing.T) {
	db, _ := open(t, "tx")
	if _, err := db.Exec("CREATE TABLE acct (owner TEXT, balance INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO acct (owner, balance) VALUES (?, ?)", "alice", 100); err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE acct SET balance = ? WHERE owner = ?", 70, "alice"); err != nil {
		t.Fatal(err)
	}
	var mid int64
	if err := db.QueryRow("SELECT balance FROM acct WHERE owner = ?", "alice").Scan(&mid); err != nil {
		t.Fatal(err)
	}
	if mid != 100 {
		t.Errorf("uncommitted write visible outside the tx: %d", mid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var after int64
	if err := db.QueryRow("SELECT balance FROM acct WHERE owner = ?", "alice").Scan(&after); err != nil {
		t.Fatal(err)
	}
	if after != 70 {
		t.Errorf("committed balance = %d, want 70", after)
	}

	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec("UPDATE acct SET balance = ? WHERE owner = ?", 0, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	var rolled int64
	if err := db.QueryRow("SELECT balance FROM acct WHERE owner = ?", "alice").Scan(&rolled); err != nil {
		t.Fatal(err)
	}
	if rolled != 70 {
		t.Errorf("rolled-back write persisted: %d", rolled)
	}
}

// TestDriverUnknownDSN: opening an unbound name fails with a pointer
// at Bind.
func TestDriverUnknownDSN(t *testing.T) {
	db, err := sql.Open(resinsql.DriverName, "never-bound")
	if err != nil {
		t.Fatal(err) // sql.Open defers dialing; the Ping must fail
	}
	defer db.Close()
	if err := db.Ping(); err == nil {
		t.Error("Ping on an unbound DSN succeeded")
	}
}

// TestDriverTaintedIntRoundTrip: integer cells keep their policies too,
// via the Int scanner.
func TestDriverTaintedIntRoundTrip(t *testing.T) {
	db, _ := open(t, "taintint")
	if _, err := db.Exec("CREATE TABLE scores (id INT, score INT)"); err != nil {
		t.Fatal(err)
	}
	score := core.NewInt(91).WithPolicy(&sanitize.UntrustedData{Source: "form:score"})
	if _, err := db.Exec("INSERT INTO scores (id, score) VALUES (?, ?)", 1, score); err != nil {
		t.Fatal(err)
	}
	var got resinsql.Int
	if err := db.QueryRow("SELECT score FROM scores WHERE id = ?", 1).Scan(&got); err != nil {
		t.Fatal(err)
	}
	if got.V.Value() != 91 {
		t.Fatalf("score = %d", got.V.Value())
	}
	if !got.V.IsTainted() || !got.V.Policies().Any(sanitize.IsUntrusted) {
		t.Error("integer cell lost its policy across the driver boundary")
	}
}

// TestFileDSNRestartPreservesPolicies is the durability acceptance
// round trip through the driver facade: a file: DSN opens a WAL-backed
// database, a tracked value inserted before a restart (close + reopen of
// the same path) still carries its UntrustedData policy after recovery.
func TestFileDSNRestartPreservesPolicies(t *testing.T) {
	rt := core.NewRuntime()
	dsn := resinsql.FilePrefix + filepath.Join(t.TempDir(), "facade.wal")

	native, err := resinsql.OpenFile(dsn, rt)
	if err != nil {
		t.Fatal(err)
	}
	db, err := sql.Open(resinsql.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE notes (id INT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	tainted := sanitize.Taint(core.NewString("remember me"), "form:body")
	if _, err := db.Exec("INSERT INTO notes (id, body) VALUES (?, ?)", 7, tainted); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	_ = native // the native handle is owned by the registry; CloseFile closes it
	if err := resinsql.CloseFile(dsn); err != nil {
		t.Fatal(err)
	}

	// Restart: an unbound file: DSN recovers lazily inside the driver —
	// plain database/sql code, nothing but the path.
	db2, err := sql.Open(resinsql.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	defer resinsql.CloseFile(dsn) //nolint:errcheck
	var body resinsql.String
	if err := db2.QueryRow("SELECT body FROM notes WHERE id = ?", 7).Scan(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Valid || body.V.Raw() != "remember me" {
		t.Fatalf("recovered body = %q (valid=%v)", body.V.Raw(), body.Valid)
	}
	found := false
	for _, p := range body.V.Policies().Policies() {
		if u, ok := p.(*sanitize.UntrustedData); ok && u.Source == "form:body" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered policies = %s, want UntrustedData{form:body}", body.V.Describe())
	}
}

// TestOpenFileRejectsBadDSN pins the error paths of the file: scheme.
func TestOpenFileRejectsBadDSN(t *testing.T) {
	rt := core.NewRuntime()
	if _, err := resinsql.OpenFile("not-a-file-dsn", rt); err == nil {
		t.Error("OpenFile accepted a DSN without the file: prefix")
	}
	if _, err := resinsql.OpenFile(resinsql.FilePrefix, rt); err == nil {
		t.Error("OpenFile accepted an empty path")
	}
	if _, err := sql.Open(resinsql.DriverName, "unbound-name"); err == nil {
		// driver.Open runs lazily; force a connection.
		db, _ := sql.Open(resinsql.DriverName, "unbound-name")
		if db != nil {
			if err := db.Ping(); err == nil {
				t.Error("unbound non-file DSN connected")
			}
			db.Close()
		}
	}
}
