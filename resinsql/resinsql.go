// Package resinsql is a database/sql driver facade over the RESIN
// tracked database (internal/sqldb): it lets code written against the
// standard library's database/sql API — sql.Open, Prepare, Query, Exec,
// transactions — run on a RESIN database while policy annotations
// survive the driver boundary in both directions.
//
//   - Inbound, bound arguments may be tracked values (resin.String /
//     resin.Int, i.e. core.String / core.Int): a NamedValueChecker
//     passes them through the driver untouched, so their policy sets
//     reach the SQL filter and persist into shadow policy columns
//     exactly as on the native API (paper §3.4.1, Figure 4).
//
//   - Outbound, result cells that carry policies surface as tracked
//     values; scan them with the String / Int scanner wrappers in this
//     package. Untainted cells surface as plain driver values, so
//     policy-oblivious code keeps working unchanged.
//
// The driver registers itself as "resin". Data source names resolve
// through an explicit registry: call Bind(name, db) with a *sqldb.DB,
// then sql.Open("resin", name). A DSN of the form "file:PATH" instead
// names a WAL-backed persistent database (docs/SQL.md §8): OpenFile
// opens one explicitly over a caller-supplied runtime, and an unbound
// file: DSN reaching sql.Open is opened lazily over a shared default
// runtime, so plain database/sql code gets durable policy annotations
// with nothing but a path. A DSN of the form "net:host:port" connects
// over TCP to a resin-server (docs/WIRE.md): annotations cross the
// socket in the canonical EncodeSpans form, so taint survives the
// network exactly as it survives the driver boundary. Statements use
// `?` or `:name` placeholders; see docs/SQL.md §6 for the binding
// semantics.
package resinsql

import (
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"resin/internal/core"
	"resin/internal/sqldb"
)

// DriverName is the name this package registers with database/sql.
const DriverName = "resin"

func init() { sql.Register(DriverName, &Driver{}) }

// registry maps data source names to bound RESIN databases.
var registry = struct {
	mu sync.RWMutex
	m  map[string]*sqldb.DB
}{m: make(map[string]*sqldb.DB)}

// Bind associates a data source name with a RESIN database, so
// sql.Open("resin", name) connects to it. Rebinding a name replaces the
// previous association; open connections keep their database.
func Bind(name string, db *sqldb.DB) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.m[name] = db
}

// Unbind removes a data source name from the registry.
func Unbind(name string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	delete(registry.m, name)
}

// NewDB creates a fresh tracked database over rt (resin.NewRuntime()),
// binds it under name, and returns the native handle. Consumers outside
// this module cannot import internal/sqldb to build one themselves, but
// they can hold the returned handle and call its methods (Filter
// configuration, native Prepare/Query, transactions) — this constructor
// is their entry point, paired with sql.Open(DriverName, name) for the
// database/sql view of the same store.
func NewDB(name string, rt *core.Runtime) *sqldb.DB {
	db := sqldb.Open(rt)
	Bind(name, db)
	return db
}

// FilePrefix marks a data source name as a WAL file path rather than a
// registry key: "file:/var/data/app.db".
const FilePrefix = "file:"

// OpenFile opens (creating or recovering as needed) the WAL-backed
// database at the path of a "file:PATH" DSN over rt, binds it under the
// full DSN, and returns the native handle — the persistent counterpart
// of NewDB. Pair it with sql.Open(DriverName, dsn); when finished, Close
// the native handle and Unbind the DSN so a later OpenFile re-recovers
// from disk.
func OpenFile(dsn string, rt *core.Runtime) (*sqldb.DB, error) {
	path := strings.TrimPrefix(dsn, FilePrefix)
	if path == dsn || path == "" {
		return nil, fmt.Errorf("resinsql: OpenFile wants a %q DSN, got %q", FilePrefix+"PATH", dsn)
	}
	db, err := sqldb.OpenDB(rt, path)
	if err != nil {
		return nil, err
	}
	Bind(dsn, db)
	return db, nil
}

// CloseFile syncs and closes the WAL-backed database bound to dsn —
// whether it was opened explicitly (OpenFile) or lazily through
// sql.Open — and removes the binding, so a later open re-recovers from
// disk and can take the file lock. Closing the *sql.DB alone is not
// enough: database/sql never learns about the WAL, so every file: DSN
// should be paired with a CloseFile.
func CloseFile(dsn string) error {
	registry.mu.Lock()
	db := registry.m[dsn]
	delete(registry.m, dsn)
	registry.mu.Unlock()
	lazyOpens.mu.Lock()
	delete(lazyOpens.m, dsn) // a later sql.Open re-recovers from disk
	lazyOpens.mu.Unlock()
	if db == nil {
		return fmt.Errorf("resinsql: no database bound to %q", dsn)
	}
	return db.Close()
}

// defaultRuntime backs file: DSNs opened implicitly through sql.Open
// (no way to pass a runtime through database/sql): one shared tracked
// runtime for the process.
var defaultRuntime = struct {
	once sync.Once
	rt   *core.Runtime
}{}

// lazyOpens serializes implicit file: opens per DSN, so WAL replay — a
// full file read plus statement re-execution, possibly seconds for a
// long-history log — runs outside the global registry lock and never
// stalls connections to other data sources.
var lazyOpens = struct {
	mu sync.Mutex
	m  map[string]*lazyOpen
}{m: make(map[string]*lazyOpen)}

type lazyOpen struct {
	once sync.Once
	db   *sqldb.DB
	err  error
}

func openFileLazily(name string) (*sqldb.DB, error) {
	defaultRuntime.once.Do(func() { defaultRuntime.rt = core.NewRuntime() })
	lazyOpens.mu.Lock()
	o := lazyOpens.m[name]
	if o == nil {
		o = &lazyOpen{}
		lazyOpens.m[name] = o
	}
	lazyOpens.mu.Unlock()
	o.once.Do(func() {
		o.db, o.err = sqldb.OpenDB(defaultRuntime.rt, strings.TrimPrefix(name, FilePrefix))
		if o.err == nil {
			Bind(name, o.db)
		} else {
			// Leave the entry retryable: a transient failure (e.g. the
			// previous holder of the file lock still closing) must not
			// pin this DSN to an error forever.
			lazyOpens.mu.Lock()
			delete(lazyOpens.m, name)
			lazyOpens.mu.Unlock()
		}
	})
	return o.db, o.err
}

// Driver implements driver.Driver over the registry.
type Driver struct{}

// Open connects to the database bound to the given data source name. An
// unbound name with the file: prefix is opened (recovering the WAL at
// that path) over a shared default runtime and bound for later calls.
func (*Driver) Open(name string) (driver.Conn, error) {
	if strings.HasPrefix(name, NetPrefix) {
		return openNetConn(name)
	}
	registry.mu.RLock()
	db := registry.m[name]
	registry.mu.RUnlock()
	if db == nil && strings.HasPrefix(name, FilePrefix) {
		var err error
		if db, err = openFileLazily(name); err != nil {
			return nil, err
		}
	}
	if db == nil {
		return nil, fmt.Errorf("resinsql: no database bound to %q (call resinsql.Bind first)", name)
	}
	return &conn{db: db}, nil
}

// conn is one database/sql connection. The underlying *sqldb.DB is safe
// for concurrent use, so connections are cheap handles; a connection
// additionally tracks its open transaction, because database/sql routes
// sql.Tx statements through the connection that began the transaction.
type conn struct {
	db *sqldb.DB
	tx *sqldb.Tx
}

// Prepare compiles the query once on the RESIN side; inside a
// transaction the statement executes against the speculative state.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	var st *sqldb.Stmt
	var err error
	if c.tx != nil {
		st, err = c.tx.PrepareRaw(query)
	} else {
		st, err = c.db.PrepareRaw(query)
	}
	if err != nil {
		return nil, err
	}
	return &stmt{st: st}, nil
}

func (c *conn) Close() error { return nil }

// Begin opens a RESIN transaction (speculative copy, integrity
// assertions checked at commit — see sqldb.Tx).
func (c *conn) Begin() (driver.Tx, error) {
	if c.tx != nil {
		return nil, errors.New("resinsql: transaction already open on this connection")
	}
	c.tx = c.db.Begin()
	return &tx{c: c}, nil
}

// CheckNamedValue admits tracked values (core.String, core.Int) across
// the driver boundary unconverted — this is the inbound half of policy
// preservation — and defers everything else to the default converter.
func (c *conn) CheckNamedValue(nv *driver.NamedValue) error {
	return checkNamedValue(nv)
}

func checkNamedValue(nv *driver.NamedValue) error {
	switch nv.Value.(type) {
	case core.String, core.Int:
		return nil
	}
	v, err := driver.DefaultParameterConverter.ConvertValue(nv.Value)
	if err != nil {
		return err
	}
	nv.Value = v
	return nil
}

// tx adapts sqldb.Tx to driver.Tx.
type tx struct{ c *conn }

func (t *tx) Commit() error {
	st := t.c.tx
	t.c.tx = nil
	if st == nil {
		return sqldb.ErrTxDone
	}
	return st.Commit()
}

func (t *tx) Rollback() error {
	st := t.c.tx
	t.c.tx = nil
	if st == nil {
		return sqldb.ErrTxDone
	}
	return st.Rollback()
}

// stmt adapts sqldb.Stmt to driver.Stmt.
type stmt struct{ st *sqldb.Stmt }

func (s *stmt) Close() error { return nil }

// NumInput reports the placeholder count, letting database/sql enforce
// argument arity before the driver sees the call.
func (s *stmt) NumInput() int { return s.st.NumArgs() }

// CheckNamedValue mirrors the connection's converter (database/sql
// consults the statement first when it implements the interface).
func (s *stmt) CheckNamedValue(nv *driver.NamedValue) error {
	return checkNamedValue(nv)
}

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	affected, err := s.st.Exec(anyArgs(args)...)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(affected)}, nil
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	res, err := s.st.Query(anyArgs(args)...)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

func anyArgs(args []driver.Value) []any {
	if len(args) == 0 {
		return nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		out[i] = a
	}
	return out
}

// result adapts an affected-row count to driver.Result.
type result struct{ affected int64 }

func (result) LastInsertId() (int64, error) {
	return 0, errors.New("resinsql: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) { return r.affected, nil }

// rows adapts a tracked sqldb.Result to driver.Rows. Cells with
// policies cross the boundary as tracked values (scan them with the
// String / Int wrappers below); untainted cells cross as plain values.
type rows struct {
	res *sqldb.Result
	i   int
}

func (r *rows) Columns() []string { return r.res.Columns }

func (r *rows) Close() error { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.i >= r.res.Len() {
		return io.EOF
	}
	for ci := range r.res.Columns {
		cell := r.res.Rows[r.i][ci]
		switch {
		case cell.Null:
			dest[ci] = nil
		case cell.IsInt:
			if cell.Int.IsTainted() {
				dest[ci] = cell.Int
			} else {
				dest[ci] = cell.Int.Value()
			}
		default:
			if cell.Str.IsTainted() {
				dest[ci] = cell.Str
			} else {
				dest[ci] = cell.Str.Raw()
			}
		}
	}
	r.i++
	return nil
}

// String is a sql.Scanner that preserves policy annotations: scanning a
// tracked cell keeps its core.String (policies included); scanning a
// plain value wraps it untainted. Valid follows the sql.NullString
// convention — false when the scanned cell was SQL NULL — so NULL is
// never conflated with a stored empty string.
type String struct {
	V     core.String
	Valid bool
}

// Scan implements sql.Scanner.
func (s *String) Scan(src any) error {
	s.Valid = src != nil
	switch v := src.(type) {
	case nil:
		s.V = core.String{}
	case core.String:
		s.V = v
	case core.Int:
		s.V = v.ToString()
	case string:
		s.V = core.NewString(v)
	case []byte:
		s.V = core.NewString(string(v))
	case int64:
		s.V = core.NewString(strconv.FormatInt(v, 10))
	default:
		return fmt.Errorf("resinsql: cannot scan %T into resinsql.String", src)
	}
	return nil
}

// Int is a sql.Scanner that preserves policy annotations on integer
// cells, mirroring String (including the NULL-distinguishing Valid
// flag).
type Int struct {
	V     core.Int
	Valid bool
}

// Scan implements sql.Scanner.
func (n *Int) Scan(src any) error {
	n.Valid = src != nil
	switch v := src.(type) {
	case nil:
		n.V = core.Int{}
	case core.Int:
		n.V = v
	case int64:
		n.V = core.NewInt(v)
	case core.String:
		parsed, err := v.ToInt()
		if err != nil {
			return fmt.Errorf("resinsql: cannot scan %q into resinsql.Int", v.Raw())
		}
		n.V = parsed
	case string:
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("resinsql: cannot scan %q into resinsql.Int", v)
		}
		n.V = core.NewInt(parsed)
	case []byte:
		parsed, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return fmt.Errorf("resinsql: cannot scan %q into resinsql.Int", v)
		}
		n.V = core.NewInt(parsed)
	default:
		return fmt.Errorf("resinsql: cannot scan %T into resinsql.Int", src)
	}
	return nil
}
