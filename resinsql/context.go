package resinsql

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"

	"resin/internal/sqldb"
)

// Context-aware driver interfaces for the in-process connection.
//
// The RESIN engine executes queries synchronously in memory, so a
// context cannot interrupt one mid-flight; what these implementations
// guarantee is that a done context is observed before execution starts
// (database/sql otherwise falls back to the contextless methods and
// ignores ctx entirely), and that named arguments (sql.Named) reach the
// prepared-statement layer as sqldb named bindings. The net: DSN
// connection (net.go) additionally turns ctx deadlines into socket
// deadlines — see wire.Conn.

// namedAnyArgs converts driver named values to engine arguments:
// values with names become sqldb named bindings, the rest positional.
func namedAnyArgs(args []driver.NamedValue) []any {
	if len(args) == 0 {
		return nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		if a.Name != "" {
			out[i] = sqldb.Named(a.Name, a.Value)
		} else {
			out[i] = a.Value
		}
	}
	return out
}

// QueryContext implements driver.QueryerContext: one-shot queries skip
// the driver.Stmt round trip.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Route through the prepared-statement layer (the plan cache makes
	// this cheap) so named arguments bind uniformly, as on the server.
	var st *sqldb.Stmt
	var err error
	if c.tx != nil {
		st, err = c.tx.PrepareRaw(query)
	} else {
		st, err = c.db.PrepareRaw(query)
	}
	if err != nil {
		return nil, err
	}
	res, err := st.Query(namedAnyArgs(args)...)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// ExecContext implements driver.ExecerContext.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	r, err := c.QueryContext(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(r.(*rows).res.Affected)}, nil
}

// BeginTx implements driver.ConnBeginTx. The engine has one isolation
// level — serializable speculative copies — so any explicit weaker
// request is refused rather than silently upgraded; read-only
// transactions are not modeled (use plain queries, which read a
// consistent MVCC snapshot anyway).
func (c *conn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if lvl := sql.IsolationLevel(opts.Isolation); lvl != sql.LevelDefault && lvl != sql.LevelSerializable {
		return nil, fmt.Errorf("resinsql: isolation level %s not supported (transactions are serializable)", lvl)
	}
	if opts.ReadOnly {
		return nil, errors.New("resinsql: read-only transactions are not supported")
	}
	return c.Begin()
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := s.st.Query(namedAnyArgs(args)...)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	affected, err := s.st.Exec(namedAnyArgs(args)...)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(affected)}, nil
}
