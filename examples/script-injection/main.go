// Script injection example: Figure 6 of the paper — the CodeApproval
// policy and the interpreter filter that together implement Data Flow
// Assertion 3: "the interpreter may not interpret any user-supplied code."
//
// See README.md for the package map (internal/script is a boundary
// adapter over the internal/core runtime; docs/ARCHITECTURE.md shows
// the layering).
//
// Run: go run ./examples/script-injection
package main

import (
	"fmt"

	"resin/internal/core"
	"resin/internal/script"
	"resin/internal/vfs"
)

func main() {
	rt := core.NewRuntime()
	fs := vfs.New(rt)
	in := script.New(rt, fs)
	out := core.NewChannel(rt, core.KindHTTP, core.ExportCheckFilter{})

	// Install the application: developer-shipped code is approved
	// (Figure 6's make_file_executable writes a persistent CodeApproval
	// policy into the file's extended attributes).
	fs.MkdirAll("/app", nil)
	fs.MkdirAll("/uploads", nil)
	fs.WriteFile("/app/theme.rsl", core.NewString(`
		func banner(name) { return "== " . name . " =="; }
		echo banner("ocean theme");
	`), nil)
	if err := script.MakeFileExecutable(fs, "/app/theme.rsl"); err != nil {
		panic(err)
	}

	// The adversary uploads a file containing code (every upload path in
	// the paper's five CVEs reduces to this).
	fs.WriteFile("/uploads/avatar.png", core.NewString(`echo "0wned by mallory";`), nil)

	// The global configuration replaces the interpreter's default import
	// filter with the approval-requiring one (§5.2).
	in.RequireApprovedCode()

	fmt.Println("running installed theme:")
	if err := in.RunFile("/app/theme.rsl", out, nil); err != nil {
		fmt.Println("  error:", err)
	} else {
		fmt.Println("  output:", out.RawOutput())
	}

	fmt.Println("running uploaded 'image':")
	err := in.RunFile("/uploads/avatar.png", out, nil)
	fmt.Println("  error:", err)

	fmt.Println("including the upload from approved code:")
	fs.WriteFile("/app/main.rsl", core.NewString(`include "/uploads/avatar.png";`), nil)
	script.MakeFileExecutable(fs, "/app/main.rsl")
	err = in.RunFile("/app/main.rsl", out, nil)
	fmt.Println("  error:", err)

	fmt.Println("\nEvery character of interpreted code must carry the CodeApproval")
	fmt.Println("policy; uploads never do, so no include/eval/direct-request path")
	fmt.Println("can execute them.")
}
