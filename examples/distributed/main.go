// Distributed example: the §8 extension — policy objects propagating
// between two RESIN runtimes, the way DStar forwards information flow
// labels between machines.
//
// A frontend runtime fetches a user record from a backend runtime over a
// link; the password policy serialized on the backend is re-instantiated
// on the frontend and still blocks disclosure there.
//
// See docs/ARCHITECTURE.md for where the remote channel sits in the
// boundary-adapter layer, and doc.go for the Table 3 API mapping.
//
// Run: go run ./examples/distributed
package main

import (
	"errors"
	"fmt"

	"resin"
	"resin/internal/core"
	"resin/internal/remote"
)

// CredentialPolicy forbids exporting a credential anywhere but an email
// to its owner.
type CredentialPolicy struct {
	Owner string `json:"owner"`
}

// ExportCheck implements the credential flow rule.
func (p *CredentialPolicy) ExportCheck(ctx *resin.Context) error {
	if ctx.Type() == resin.KindEmail {
		if to, _ := ctx.GetString("email"); to == p.Owner {
			return nil
		}
	}
	return errors.New("credential of " + p.Owner + " may not flow here")
}

func init() { resin.RegisterPolicyClass("example.CredentialPolicy", &CredentialPolicy{}) }

func main() {
	backend := resin.NewRuntime()  // the database tier
	frontend := resin.NewRuntime() // the web tier
	be, fe := remote.NewLink(backend, frontend)

	// Backend: annotate and ship a record. The link serializes the policy
	// annotation with the bytes (it does not export-check: both ends
	// enforce the same assertions, like DStar's mutually-trusting nodes).
	record := core.Concat(
		core.NewString("user=alice;token="),
		backend.PolicyAdd(core.NewString("tok-o0o-secret"), &CredentialPolicy{Owner: "alice@corp"}),
	)
	if err := be.Send(record); err != nil {
		panic(err)
	}

	// Frontend: receive; the policy is a fresh object instantiated from
	// the frontend's registered class.
	got, err := fe.Recv()
	if err != nil {
		panic(err)
	}
	fmt.Println("frontend received:", got.Describe())

	// The restored policy guards the frontend's boundaries.
	http := resin.NewChannel(frontend, resin.KindHTTP, resin.ExportCheckFilter{})
	fmt.Println("render to browser: ", verdict(http.Write(got)))

	mail := resin.NewChannel(frontend, resin.KindEmail, resin.ExportCheckFilter{})
	mail.Context().Set("email", "alice@corp")
	fmt.Println("email to owner:    ", verdict(mail.Write(got)))

	// Character-level tracking survived the hop: the username half is
	// untainted and exportable on its own.
	username := got.Slice(0, got.Index(";"))
	fmt.Println("username only:     ", verdict(http.Write(username)))
}

func verdict(err error) string {
	if err == nil {
		return "ALLOWED"
	}
	if ae, ok := resin.IsAssertionError(err); ok {
		return "BLOCKED: " + ae.Err.Error()
	}
	return "error: " + err.Error()
}
