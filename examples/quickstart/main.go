// Quickstart: the paper's running example (Figure 2) in ~60 lines.
//
// A password may leave the system only via email to its owner, or over
// HTTP to the program chair. We attach one policy object to the password;
// the runtime tracks it through formatting and copying; every output
// boundary checks it.
//
// The README.md quickstart section walks this file line by line, and
// doc.go maps the paper's Table 3 API to the Go API used here
// (policy_add → Runtime.PolicyAdd, export_check → Policy.ExportCheck).
//
// Run: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"

	"resin"
)

// PasswordPolicy is the policy object of Figure 2.
type PasswordPolicy struct {
	Email string `json:"email"`
}

// ExportCheck allows email to the owner, or HTTP to the program chair.
func (p *PasswordPolicy) ExportCheck(ctx *resin.Context) error {
	if ctx.Type() == resin.KindEmail {
		if to, _ := ctx.GetString("email"); to == p.Email {
			return nil
		}
	}
	if ctx.Type() == resin.KindHTTP && ctx.GetBool("privChair") {
		return nil
	}
	return errors.New("unauthorized disclosure")
}

func main() {
	rt := resin.NewRuntime()

	// policy_add($password, new PasswordPolicy('u@foo.com'))
	password := rt.PolicyAdd(resin.NewString("hunter2"),
		&PasswordPolicy{Email: "u@foo.com"})

	// The policy rides along as the application formats the reminder.
	message := resin.Format("Dear user,\nYour password is: %s\n", password)

	// Boundary 1: email to the owner — allowed.
	toOwner := resin.NewChannel(rt, resin.KindEmail, resin.ExportCheckFilter{})
	toOwner.Context().Set("email", "u@foo.com")
	fmt.Println("email to owner:      ", describe(toOwner.Write(message)))

	// Boundary 2: email to someone else — vetoed.
	toOther := resin.NewChannel(rt, resin.KindEmail, resin.ExportCheckFilter{})
	toOther.Context().Set("email", "attacker@evil.com")
	fmt.Println("email to attacker:   ", describe(toOther.Write(message)))

	// Boundary 3: HTTP to a regular user — vetoed (this is the HotCRP
	// email-preview bug being stopped).
	httpUser := resin.NewChannel(rt, resin.KindHTTP, resin.ExportCheckFilter{})
	fmt.Println("HTTP to regular user:", describe(httpUser.Write(message)))

	// Boundary 4: HTTP to the program chair — allowed.
	httpChair := resin.NewChannel(rt, resin.KindHTTP, resin.ExportCheckFilter{})
	httpChair.Context().Set("privChair", true)
	fmt.Println("HTTP to chair:       ", describe(httpChair.Write(message)))

	// Character-level tracking: only the password bytes carry the policy,
	// so slicing the boilerplate back out of the message yields data that
	// can flow anywhere.
	greeting := message.Slice(0, 10)
	fmt.Println("greeting slice:      ", describe(httpUser.Write(greeting)))
}

func describe(err error) string {
	if err == nil {
		return "delivered"
	}
	if ae, ok := resin.IsAssertionError(err); ok {
		return "BLOCKED (" + ae.Err.Error() + ")"
	}
	return "error: " + err.Error()
}
