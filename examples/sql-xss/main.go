// SQL injection / XSS example: the two defense strategies of §5.3,
// side by side, against the same attacks.
//
// docs/ARCHITECTURE.md traces this exact flow — HTTP input taint, SQL
// boundary assertions, output filtering — through the layered design;
// README.md maps the packages involved (httpd, sqldb, sanitize).
//
// Run: go run ./examples/sql-xss
package main

import (
	"fmt"

	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
)

func main() {
	rt := core.NewRuntime()

	fmt.Println("== SQL injection (§5.3) ==")
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE users (name TEXT, role TEXT)")
	db.MustExec("INSERT INTO users (name, role) VALUES ('alice', 'admin'), ('bob', 'user')")

	// User input arrives tainted (as the HTTP layer would mark it).
	evil := sanitize.Taint(core.NewString("x' OR role = 'admin"), "form:name")

	// Strategy 2: reject untrusted characters in the query structure.
	db.Filter().RejectTaintedStructure(true)

	inj := core.Concat(core.NewString("SELECT name FROM users WHERE name = '"), evil, core.NewString("'"))
	_, err := db.Query(inj)
	fmt.Println("unsanitized injection:", errString(err))

	ok := core.Concat(core.NewString("SELECT name, role FROM users WHERE name = "), sanitize.SQLQuote(evil))
	res, err := db.Query(ok)
	fmt.Printf("properly quoted:       rows=%d err=%v\n", res.Len(), err)

	// The prepared-statement API goes further: the tainted input binds
	// into a `?` slot as a value, so it cannot reshape the query no
	// matter what it contains — no quoting call, nothing to forget. The
	// assertions stay on as defense in depth, and they skip bound slots
	// by construction (the query text holds only `?`).
	stmt, err := db.Prepare(core.NewString("SELECT name, role FROM users WHERE name = ?"))
	if err != nil {
		panic(err)
	}
	res, err = stmt.Query(evil)
	fmt.Printf("bound via ?:           rows=%d err=%v (payload is just a value)\n", res.Len(), err)
	res, err = stmt.Query(core.NewString("bob"))
	fmt.Printf("bound benign lookup:   rows=%d err=%v\n", res.Len(), err)

	// Strategy 1 additionally demands the sanitized marker everywhere.
	db.Filter().RequireSanitizedMarkers(true)
	benign := sanitize.Taint(core.NewString("bob"), "form:name")
	raw := core.Concat(core.NewString("SELECT name FROM users WHERE name = '"), benign, core.NewString("'"))
	_, err = db.Query(raw)
	fmt.Println("benign but unmarked:  ", errString(err), "(strategy 1 catches the missing sanitizer call itself)")

	fmt.Println()
	fmt.Println("== Cross-site scripting (§5.3) ==")
	srv := httpd.NewServer(rt)
	srv.AddBodyFilter(&httpd.XSSFilter{RequireSanitizedMarkers: true})
	srv.Handle("/greet", func(req *httpd.Request, resp *httpd.Response) error {
		// Correct path: escape before rendering.
		return resp.Write(core.Format("<p>hello, %s</p>", sanitize.HTMLEscape(req.Param("name"))))
	})
	srv.Handle("/greet-raw", func(req *httpd.Request, resp *httpd.Response) error {
		// Vulnerable path: forgot the escape.
		return resp.Write(core.Format("<p>hello, %s</p>", req.Param("name")))
	})

	payload := map[string]string{"name": "<script>steal()</script>"}
	resp, err := srv.Do("GET", "/greet", payload, nil)
	fmt.Println("escaped handler:  ", errString(err), "body:", resp.RawBody())
	_, err = srv.Do("GET", "/greet-raw", payload, nil)
	fmt.Println("vulnerable handler:", errString(err))

	fmt.Println()
	fmt.Println("One assertion covers every handler — including ones added later by")
	fmt.Println("programmers who never heard of the sanitization rules.")
}

func errString(err error) string {
	if err == nil {
		return "ALLOWED"
	}
	if ae, ok := core.IsAssertionError(err); ok {
		return "BLOCKED: " + ae.Err.Error()
	}
	return "error: " + err.Error()
}
