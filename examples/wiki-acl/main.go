// Wiki ACL example: Figure 5 of the paper — the 8-line MoinMoin read
// assertion — demonstrated end to end, including the CVE-2008-6548
// include-directive attack that it stops.
//
// README.md describes where the Table 4 applications live
// (internal/apps/*); doc.go maps the paper's API to the resin facade
// used here.
//
// Run: go run ./examples/wiki-acl
package main

import (
	"fmt"

	"resin"
	"resin/internal/apps/wiki"
	"resin/internal/core"
)

func main() {
	fmt.Println("== MoinMoin read ACL under RESIN (Figure 5) ==")
	fmt.Println()

	// Without the assertion: the include-directive bug leaks the page.
	leaked, _ := wiki.AttackIncludeDirective(false)
	fmt.Printf("unmodified wiki, include-directive attack: leaked=%v\n", leaked)

	// With the assertion: the PagePolicy travels with the page content —
	// through the file system (persisted in xattrs), through the include
	// expansion — and the HTTP boundary refuses the flow.
	leaked, blockErr := wiki.AttackIncludeDirective(true)
	fmt.Printf("RESIN wiki, same attack:                   leaked=%v\n", leaked)
	if ae, ok := resin.IsAssertionError(blockErr); ok {
		fmt.Printf("blocked by policy %T at %s boundary\n", ae.Policy, ae.Context.Type())
	}
	fmt.Println()

	// The same policy object serialized into the page file:
	rt := core.NewRuntime()
	app := wiki.New(rt, true)
	app.CreatePage("Demo", wiki.ACL{Read: []string{"alice"}, Write: []string{"alice"}},
		"only alice may read this", "alice")
	body, err := app.FS.ReadFile("/wiki/pages/Demo/rev00001", nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("page content read back from the filesystem:")
	fmt.Println(" ", body.Describe())
	fmt.Println()
	fmt.Println("The annotation lives in the file's extended attributes, so the policy")
	fmt.Println("outlives the process and is enforced by any RESIN-aware reader.")
}
