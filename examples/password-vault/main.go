// Password vault example: persistent policies end to end (§3.4.1).
//
// A secret is stored in a SQL database and in a file; its policy objects
// are serialized into the database's policy columns and the file's
// extended attributes, survive "restarts" (fresh policy objects), and are
// still enforced when the data is fetched back out — even through an
// adversary-controlled SELECT or a direct HTTP fetch of the file.
//
// Deserialized policy sets are canonicalized through the runtime's
// intern table (docs/ARCHITECTURE.md, "Policy-set interning"), so
// re-fetched data stays on the tracking fast paths; doc.go maps the
// serialization API (RegisterPolicyClass, EncodeSpans/DecodeSpans).
//
// Run: go run ./examples/password-vault
package main

import (
	"errors"
	"fmt"

	"resin"
	"resin/internal/core"
	"resin/internal/httpd"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
	"resin/internal/vfs"
)

// VaultPolicy forbids every export of a vault secret.
type VaultPolicy struct {
	Owner string `json:"owner"`
}

// ExportCheck vetoes all boundaries.
func (p *VaultPolicy) ExportCheck(ctx *resin.Context) error {
	return errors.New("vault secret of " + p.Owner + " may not leave the system")
}

func init() { resin.RegisterPolicyClass("example.VaultPolicy", &VaultPolicy{}) }

func main() {
	rt := resin.NewRuntime()
	secret := rt.PolicyAdd(resin.NewString("corp-master-key-0451"), &VaultPolicy{Owner: "ops"})

	// Store in the database: the RESIN SQL filter persists the policy in
	// a shadow column (Figure 4).
	db := sqldb.Open(rt)
	db.MustExec("CREATE TABLE vault (name TEXT, secret TEXT)")
	if _, err := db.Query(core.Concat(
		core.NewString("INSERT INTO vault (name, secret) VALUES ('master', "),
		sanitize.SQLQuote(secret), core.NewString(")"),
	)); err != nil {
		panic(err)
	}

	// Store in a file: the default file filter persists the policy in the
	// file's extended attributes.
	fs := vfs.New(rt)
	fs.MkdirAll("/www/backup", nil)
	if err := fs.WriteFile("/www/backup/keys.txt", secret, nil); err != nil {
		panic(err)
	}

	// Adversary move 1: a SQL injection got them an arbitrary SELECT.
	res, err := db.QueryRaw("SELECT name, secret FROM vault")
	if err != nil {
		panic(err)
	}
	leaked := res.Get(0, "secret").Str
	fmt.Println("SELECT returned the bytes:", leaked.Raw() != "")
	fmt.Println("...but they carry:", leaked.Policies())

	httpOut := resin.NewChannel(rt, resin.KindHTTP, resin.ExportCheckFilter{})
	fmt.Println("exporting query result over HTTP:", errString(httpOut.Write(leaked)))

	// Adversary move 2: fetch the backup file straight from the web root.
	srv := httpd.NewServer(rt)
	srv.ServeStatic(fs, "/www")
	resp, err := srv.Do("GET", "/backup/keys.txt", nil, nil)
	fmt.Println("fetching the backup file via HTTP:", errString(err), "body:", fmt.Sprintf("%q", resp.RawBody()))

	fmt.Println()
	fmt.Println("The policy was re-instantiated from its serialized class name and")
	fmt.Println("fields on each read — it guards the data, not the code paths.")
}

func errString(err error) string {
	if err == nil {
		return "ALLOWED"
	}
	if ae, ok := resin.IsAssertionError(err); ok {
		return "BLOCKED: " + ae.Err.Error()
	}
	return "error: " + err.Error()
}
