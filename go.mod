module resin

go 1.22
