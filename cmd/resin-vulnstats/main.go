// Command resin-vulnstats prints Tables 1 and 2 of the RESIN paper — the
// motivational vulnerability statistics. These are survey data quoted
// from the CVE database (2008) and the Web Application Security
// Consortium (2007), not measurements of this system; the command exists
// so every table in the paper has a regenerating binary.
package main

import "fmt"

type row struct {
	name    string
	count   int
	percent float64
}

func main() {
	table1 := []row{
		{"SQL injection", 1176, 20.4},
		{"Cross-site scripting", 805, 14.0},
		{"Denial of service", 661, 11.5},
		{"Buffer overflow", 550, 9.5},
		{"Directory traversal", 379, 6.6},
		{"Server-side script injection", 287, 5.0},
		{"Missing access checks", 263, 4.6},
		{"Other vulnerabilities", 1647, 28.6},
	}
	fmt.Println("Table 1 — Top CVE security vulnerabilities of 2008 [MITRE CVE database]")
	fmt.Printf("%-30s %8s %10s\n", "Vulnerability", "Count", "Percentage")
	total := 0
	for _, r := range table1 {
		fmt.Printf("%-30s %8d %9.1f%%\n", r.name, r.count, r.percent)
		total += r.count
	}
	fmt.Printf("%-30s %8d %9.1f%%\n\n", "Total", total, 100.0)

	table2 := []row{
		{"Cross-site scripting", 0, 31.5},
		{"Information leakage", 0, 23.3},
		{"Predictable resource location", 0, 10.2},
		{"SQL injection", 0, 7.9},
		{"Insufficient access control", 0, 1.5},
		{"HTTP response splitting", 0, 0.8},
	}
	fmt.Println("Table 2 — Top Web site vulnerabilities of 2007 [WASC survey]")
	fmt.Printf("%-32s %s\n", "Vulnerability", "Vulnerable sites among surveyed")
	for _, r := range table2 {
		fmt.Printf("%-32s %9.1f%%\n", r.name, r.percent)
	}
	fmt.Println("\nEvery class above except denial of service and buffer overflow is")
	fmt.Println("addressed by a data flow assertion in this repository; see")
	fmt.Println("resin-seceval for the per-class attack scenarios.")
}
