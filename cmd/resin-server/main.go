// Command resin-server serves a RESIN tracked database over TCP,
// speaking the framed wire protocol in internal/wire (docs/WIRE.md).
// Clients connect with the wire client API or database/sql via the
// resinsql "net:host:port" DSN; policy annotations cross the socket in
// the canonical EncodeSpans form, so taint survives the network.
//
// Primary (read-write, WAL-backed, ships its log to followers):
//
//	resin-server -addr :7634 -wal /var/data/forum.wal [-seed-forum]
//
// Follower (read-only replica of a primary, serving at its applied
// frontier):
//
//	resin-server -addr :7635 -wal /var/data/replica.wal -follow primary:7634
//
// SIGTERM or SIGINT drains gracefully: the listener closes, in-flight
// requests finish (bounded by -drain-timeout), idle connections close,
// and a follower's shipping stream stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"resin/internal/apps/forum"
	"resin/internal/core"
	"resin/internal/sqldb"
	"resin/internal/wire"
)

func main() {
	var (
		addr         = flag.String("addr", ":7634", "TCP listen address")
		walPath      = flag.String("wal", "", "WAL path (empty = in-memory, non-durable; required with -follow)")
		follow       = flag.String("follow", "", "primary address to replicate from (follower mode, read-only)")
		seedForum    = flag.Bool("seed-forum", false, "create and seed the forum schema before serving")
		maxConns     = flag.Int("max-conns", 0, "max concurrent connections (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
	)
	flag.Parse()

	rt := core.NewRuntime()
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("resin-server: listen: %v", err)
	}
	cfg := wire.Config{MaxConns: *maxConns}

	var srv *wire.Server
	var wg sync.WaitGroup
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *follow != "" {
		if *walPath == "" {
			log.Fatal("resin-server: -follow requires -wal (the replica's local log)")
		}
		r, err := wire.NewReplica(rt, *follow, *walPath)
		if err != nil {
			log.Fatalf("resin-server: open replica: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(ctx) //nolint:errcheck
		}()
		srv = wire.NewFollowerServer(r, cfg)
		log.Printf("resin-server: follower on %s, shipping from %s into %s", lis.Addr(), *follow, *walPath)
	} else {
		var db *sqldb.DB
		if *walPath != "" {
			db, err = sqldb.OpenDB(rt, *walPath)
			if err != nil {
				log.Fatalf("resin-server: open %s: %v", *walPath, err)
			}
			log.Printf("resin-server: primary on %s, log %s (frontier %d)", lis.Addr(), *walPath, db.Frontier())
		} else {
			db = sqldb.Open(rt)
			log.Printf("resin-server: primary on %s, in-memory (non-durable)", lis.Addr())
		}
		if *seedForum {
			forum.NewWithDB(rt, nil, true, db)
			log.Printf("resin-server: forum schema ready")
		}
		srv = wire.NewServer(db, cfg)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case <-ctx.Done():
		log.Printf("resin-server: draining (up to %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("resin-server: drain: %v", err)
		}
		stop()     // second signal kills immediately from here on
		wg.Wait()  // stop the shipping stream
		<-serveErr // Serve returns once the listener is closed
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "resin-server: serve: %v\n", err)
			os.Exit(1)
		}
	}
}
