// Command resin-seceval regenerates Table 4 of the RESIN paper: it runs
// every catalogued attack against the unmodified applications (the attack
// must succeed) and against the applications with their RESIN assertions
// installed (the attack must be blocked), measures each assertion's size,
// and prints the table.
//
// Usage:
//
//	resin-seceval
//
// The exit status is non-zero if any scenario fails to reproduce or any
// legitimate flow is broken by an assertion.
package main

import (
	"fmt"
	"os"

	"resin/internal/seceval"
)

func main() {
	rep, err := seceval.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "resin-seceval:", err)
		os.Exit(1)
	}
	fmt.Print(rep.RenderTable())
	if !rep.AllOK() {
		fmt.Fprintln(os.Stderr, "resin-seceval: reproduction FAILED (see table above)")
		os.Exit(1)
	}
}
