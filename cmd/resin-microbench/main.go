// Command resin-microbench regenerates Table 5 of the RESIN paper: the
// cost of individual operations in the unmodified runtime, the RESIN
// runtime without any policy, and the RESIN runtime with an empty policy.
//
// Usage:
//
//	resin-microbench
//
// Absolute ns/op reflect this machine and the in-memory substrates, not
// the paper's 2009 Xeon + MySQL testbed; the quantity to compare is the
// per-operation overhead pattern (small for assign/call, moderate for
// concat, larger once policies are present, largest for SQL).
package main

import (
	"fmt"

	"resin/internal/microbench"
)

func main() {
	rows := microbench.RunAll()
	fmt.Print(microbench.Render(rows))
	fmt.Println()
	fmt.Println("Paper (2009 hardware, Table 5) for shape comparison:")
	fmt.Println("  Assign variable    0.196µs → 0.210µs → 0.214µs")
	fmt.Println("  Function call      0.598µs → 0.602µs → 0.619µs")
	fmt.Println("  String concat      0.315µs → 0.340µs → 0.463µs")
	fmt.Println("  Integer addition   0.224µs → 0.247µs → 0.384µs")
	fmt.Println("  File open          5.60µs  → 7.05µs  → 18.2µs")
	fmt.Println("  File read, 1KB     14.0µs  → 16.6µs  → 26.7µs")
	fmt.Println("  File write, 1KB    57.4µs  → 60.5µs  → 71.7µs")
	fmt.Println("  SQL SELECT         134µs   → 674µs   → 832µs")
	fmt.Println("  SQL INSERT         64.8µs  → 294µs   → 508µs")
	fmt.Println("  SQL DELETE         64.7µs  → 114µs   → 115µs")
}
