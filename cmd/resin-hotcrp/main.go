// Command resin-hotcrp regenerates the §7.1 application-performance
// experiment of the RESIN paper: the time to generate a HotCRP paper page
// — session recall, SQL queries, title/abstract/author-list rendering with
// two data flow assertions — with and without RESIN.
//
// Usage:
//
//	resin-hotcrp [-n trials]
//
// The paper measured 66 ms unmodified vs 88 ms under RESIN (15.2 vs 11.4
// requests/second, 33% CPU overhead) averaged over 2000 trials on a
// 2.3 GHz Xeon running the PHP interpreter against MySQL. This
// reproduction renders the same page shape over in-memory substrates, so
// absolute times are far smaller; the comparable quantity is the relative
// overhead and the workload headroom analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"resin/internal/apps/hotcrp"
)

func measure(withResin bool, trials int) (time.Duration, error) {
	_, render := hotcrp.NewBenchInstance(withResin)
	// Warm up.
	for i := 0; i < 50; i++ {
		if err := render(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < trials; i++ {
		if err := render(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(trials), nil
}

func main() {
	trials := flag.Int("n", 2000, "trials per configuration (paper: 2000)")
	flag.Parse()

	base, err := measure(false, *trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resin-hotcrp:", err)
		os.Exit(1)
	}
	resin, err := measure(true, *trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resin-hotcrp:", err)
		os.Exit(1)
	}

	overhead := float64(resin-base) / float64(base) * 100
	fmt.Printf("§7.1 — HotCRP paper-page generation (%d trials)\n\n", *trials)
	fmt.Printf("  unmodified: %10v/page  (%8.1f requests/sec)\n", base, 1/base.Seconds())
	fmt.Printf("  RESIN:      %10v/page  (%8.1f requests/sec)\n", resin, 1/resin.Seconds())
	fmt.Printf("  overhead:   %.0f%%\n\n", overhead)
	fmt.Println("Paper: 66 ms vs 88 ms per page (15.2 vs 11.4 req/s), 33% CPU overhead.")
	fmt.Println("Shape to check: RESIN pays a page-generation overhead dominated by the")
	fmt.Println("SQL policy translation, while the page content is identical and the")
	fmt.Println("author-list assertion fires and is absorbed by output buffering.")

	// The paper's headroom analysis: 390 user actions in the 30 minutes
	// before the SOSP'07 deadline; even at 10 page requests per action
	// that averages 2.2 requests/second.
	deadlineRate := 390.0 * 10 / (30 * 60)
	fmt.Printf("\nDeadline-load headroom (paper's analysis): %.1f req/s needed;\n", deadlineRate)
	fmt.Printf("this build sustains %.1f req/s with RESIN → utilization %.2f%%.\n",
		1/resin.Seconds(), deadlineRate*resin.Seconds()*100)
}
