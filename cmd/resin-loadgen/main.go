// Command resin-loadgen drives the forum workload through the wire
// server at high connection counts and reports latency, throughput, and
// replica staleness. It is the standing load harness for the wire
// subsystem: every request crosses the TCP protocol (docs/WIRE.md),
// writes carry tainted payloads, and the run fails unless a tainted
// value written through a client comes back over the wire with its
// policy set byte-identical to an in-process read.
//
// Self-contained (default): spawns an in-process WAL-backed primary, a
// WAL-shipping replica, and TCP servers for both, then loads them:
//
//	resin-loadgen -conns 1000 -requests 20 -out BENCH_wire.json
//
// Against an external server (started with resin-server):
//
//	resin-loadgen -addr host:7634 [-replica host:7635] -conns 1000
//
// -smoke is the CI mode: a handful of connections, one batch of
// requests, full taint-round-trip assertion, same JSON shape.
//
// -audit additionally runs the lineage probe after the load: an
// in-process forum app posts a tainted body (httpd taint filter → SQL
// shadow column), ships it across the wire connection, and the run
// fails unless /audit reports every crossing in execution order
// (docs/LINEAGE.md §5).
//
// The run also fails if the replica staleness sampler ever observes a
// negative lag — the PrimarySize/Applied accounting regressing across a
// resync is a bug, never something to clamp away silently.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"resin/internal/core"
	"resin/internal/lineage"
	"resin/internal/sanitize"
	"resin/internal/sqldb"
	"resin/internal/wire"

	// A wire client must have the policy classes of the data it reads
	// registered (docs/WIRE.md §3); a -seed-forum server's rows carry
	// forum.MessagePolicy. The -audit probe also drives the app itself.
	"resin/internal/apps/forum"
)

type report struct {
	Bench          string  `json:"bench"`
	Date           string  `json:"date"`
	Conns          int     `json:"conns"`
	Requests       int     `json:"requests"`
	Writes         int64   `json:"writes"`
	Reads          int64   `json:"reads"`
	Errors         int64   `json:"errors"`
	DurationSec    float64 `json:"duration_sec"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50Ms          float64 `json:"latency_p50_ms"`
	P99Ms          float64 `json:"latency_p99_ms"`
	MaxMs          float64 `json:"latency_max_ms"`
	MaxStaleBytes  int64   `json:"max_staleness_bytes"`
	FinalStale     int64   `json:"final_staleness_bytes"`
	PrimaryFront   uint64  `json:"primary_frontier"`
	ReplicaFront   uint64  `json:"replica_frontier"`
	TaintRoundTrip string  `json:"taint_roundtrip"`
	Audit          string  `json:"audit,omitempty"`
}

func main() {
	var (
		addr      = flag.String("addr", "", "primary address (empty = self-contained in-process servers)")
		replica   = flag.String("replica", "", "replica address for staleness sampling (optional)")
		conns     = flag.Int("conns", 1000, "concurrent client connections")
		requests  = flag.Int("requests", 20, "requests per connection")
		writeFrac = flag.Float64("write-frac", 0.25, "fraction of requests that write")
		out       = flag.String("out", "BENCH_wire.json", "JSON report path")
		smoke     = flag.Bool("smoke", false, "CI smoke: 8 conns, 2 requests each, full assertions")
		audit     = flag.Bool("audit", false, "run the /audit lineage probe after the load; fail unless the trace is complete and ordered")
	)
	flag.Parse()
	if *smoke {
		*conns, *requests = 8, 2
	}
	raiseFDLimit(*conns)

	// Self-contained mode: primary + replica + servers, all in-process.
	var primaryDB *sqldb.DB
	var rep *wire.Replica
	if *addr == "" {
		var cleanup func()
		primaryDB, rep, *addr, *replica, cleanup = selfContained()
		defer cleanup()
	}

	setup, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("resin-loadgen: dial %s: %v", *addr, err)
	}
	mustExec(setup, "CREATE TABLE messages (id INT, forum INT, author TEXT, subject TEXT, body TEXT)")
	mustExec(setup, "CREATE INDEX ON messages (forum)")
	mustExec(setup, "CREATE INDEX ON messages (id)")

	// Staleness sampler: poll the replica's own status over its socket
	// (or in-process when self-contained) while the load runs. The lag
	// is the raw PrimarySize-Applied difference — a negative sample is a
	// replication accounting bug and fails the run (tripwire below),
	// never a value to clamp away.
	var maxStale, negStale atomic.Int64
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	staleness := func() (int64, bool) { return 0, false }
	if rep != nil {
		staleness = func() (int64, bool) {
			st := rep.Status()
			return st.PrimarySize - st.Applied, true
		}
	} else if *replica != "" {
		rc, err := wire.Dial(*replica)
		if err != nil {
			log.Fatalf("resin-loadgen: dial replica %s: %v", *replica, err)
		}
		defer rc.Close() //nolint:errcheck
		staleness = func() (int64, bool) {
			st, err := rc.Status()
			if err != nil {
				return 0, false
			}
			return st.PrimarySize - st.Applied, true
		}
	}
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-t.C:
				lag, ok := staleness()
				switch {
				case !ok:
				case lag < 0:
					negStale.Store(lag)
				case lag > maxStale.Load():
					maxStale.Store(lag)
				}
			}
		}
	}()

	// The load: each worker holds one connection with two prepared
	// statements, issuing a read/write mix. Writes bind a tainted body —
	// the annotation crosses the wire on every insert.
	var (
		wg       sync.WaitGroup
		writes   atomic.Int64
		reads    atomic.Int64
		failures atomic.Int64
		msgID    atomic.Int64
		latMu    sync.Mutex
		lats     []time.Duration
	)
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.Dial(*addr)
			if err != nil {
				failures.Add(int64(*requests))
				return
			}
			defer c.Close() //nolint:errcheck
			ins, err := c.Prepare(core.NewString(
				"INSERT INTO messages (id, forum, author, subject, body) VALUES (?, ?, ?, ?, ?)"))
			if err != nil {
				failures.Add(int64(*requests))
				return
			}
			sel, err := c.Prepare(core.NewString(
				"SELECT id, author, body FROM messages WHERE forum = ? ORDER BY id LIMIT ?"))
			if err != nil {
				failures.Add(int64(*requests))
				return
			}
			local := make([]time.Duration, 0, *requests)
			writeEvery := 0
			if *writeFrac > 0 {
				writeEvery = int(1 / *writeFrac)
			}
			for i := 0; i < *requests; i++ {
				t0 := time.Now()
				if writeEvery > 0 && i%writeEvery == 0 {
					id := msgID.Add(1)
					body := sanitize.Taint(
						core.NewString(fmt.Sprintf("post %d from worker %d", id, w)),
						fmt.Sprintf("form:w%d", w))
					_, err = ins.Exec(id, int(id%4)+1, fmt.Sprintf("user%d", w), "load", body)
					if err == nil {
						writes.Add(1)
					}
				} else {
					_, err = sel.Query(w%4+1, 10)
					if err == nil {
						reads.Add(1)
					}
				}
				if err != nil {
					if failures.Add(1) <= 3 {
						log.Printf("resin-loadgen: worker %d request %d: %v", w, i, err)
					}
				} else {
					local = append(local, time.Since(t0))
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopSample)
	sampleWG.Wait()

	// Taint round trip: one more tainted write, read back over the wire,
	// annotation must equal the canonical EncodeSpans form — and, when
	// self-contained, be byte-identical to the in-process read.
	taintStatus, err := assertTaintRoundTrip(setup, primaryDB)
	if err != nil {
		log.Fatalf("resin-loadgen: taint round trip: %v", err)
	}

	// Lineage probe: drive a tainted value httpd → SQL → wire and
	// require the complete ordered trace from /audit.
	auditStatus := ""
	if *audit {
		auditStatus, err = runAuditProbe(setup)
		if err != nil {
			log.Fatalf("resin-loadgen: audit probe: %v", err)
		}
	}

	rpt := report{
		Bench:          "wire",
		Date:           time.Now().UTC().Format(time.RFC3339),
		Conns:          *conns,
		Requests:       *conns * *requests,
		Writes:         writes.Load(),
		Reads:          reads.Load(),
		Errors:         failures.Load(),
		DurationSec:    elapsed.Seconds(),
		ThroughputRPS:  float64(writes.Load()+reads.Load()) / elapsed.Seconds(),
		MaxStaleBytes:  maxStale.Load(),
		TaintRoundTrip: taintStatus,
		Audit:          auditStatus,
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rpt.P50Ms = ms(lats[len(lats)/2])
		rpt.P99Ms = ms(lats[len(lats)*99/100])
		rpt.MaxMs = ms(lats[len(lats)-1])
	}
	if st, err := setup.Status(); err == nil {
		rpt.PrimaryFront = st.Frontier
	}
	if rep != nil {
		// Let the replica settle, then record the final gap and frontier.
		deadline := time.Now().Add(10 * time.Second)
		for rep.Staleness() > 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		rpt.FinalStale = rep.Staleness()
		rpt.ReplicaFront = rep.DB().Frontier()
	} else if *replica != "" {
		if lag, ok := staleness(); ok {
			if lag < 0 {
				negStale.Store(lag)
			}
			rpt.FinalStale = lag
		}
	}
	setup.Close() //nolint:errcheck

	blob, err := json.MarshalIndent(rpt, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatalf("resin-loadgen: write %s: %v", *out, err)
	}
	os.Stdout.Write(blob) //nolint:errcheck
	if neg := negStale.Load(); neg < 0 {
		log.Fatalf("resin-loadgen: sampled negative replica staleness %d bytes — PrimarySize/Applied accounting regressed", neg)
	}
	if rpt.Errors > 0 {
		log.Fatalf("resin-loadgen: %d request(s) failed", rpt.Errors)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// mustExec runs a setup statement, tolerating "already exists" so the
// harness can target a server whose forum schema is pre-seeded.
func mustExec(c *wire.Conn, q string) {
	if _, err := c.QueryRaw(q); err != nil && !strings.Contains(err.Error(), "exists") {
		log.Fatalf("resin-loadgen: %s: %v", q, err)
	}
}

// selfContained spins up a WAL-backed primary, a shipping replica, and
// TCP servers for both, returning the addresses and a teardown func.
func selfContained() (*sqldb.DB, *wire.Replica, string, string, func()) {
	rt := core.NewRuntime()
	dir, err := os.MkdirTemp("", "resin-loadgen-*")
	if err != nil {
		log.Fatal(err)
	}
	db, err := sqldb.OpenDB(rt, filepath.Join(dir, "primary.wal"))
	if err != nil {
		log.Fatal(err)
	}
	plis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	psrv := wire.NewServer(db, wire.Config{MaxConns: 4096})
	go psrv.Serve(plis) //nolint:errcheck

	rep, err := wire.NewReplica(rt, plis.Addr().String(), filepath.Join(dir, "replica.wal"))
	if err != nil {
		log.Fatal(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	repDone := make(chan struct{})
	go func() { defer close(repDone); rep.Run(rctx) }() //nolint:errcheck
	flis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fsrv := wire.NewFollowerServer(rep, wire.Config{})
	go fsrv.Serve(flis) //nolint:errcheck

	cleanup := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fsrv.Shutdown(ctx) //nolint:errcheck
		psrv.Shutdown(ctx) //nolint:errcheck
		rcancel()
		<-repDone
		rep.DB().Close()  //nolint:errcheck
		db.Close()        //nolint:errcheck
		os.RemoveAll(dir) //nolint:errcheck
	}
	return db, rep, plis.Addr().String(), flis.Addr().String(), cleanup
}

// assertTaintRoundTrip writes a tainted value through the wire client,
// reads it back over the wire, and checks the annotation is the
// canonical EncodeSpans form; with an in-process handle it additionally
// requires byte equality with a local read of the same row.
func assertTaintRoundTrip(c *wire.Conn, local *sqldb.DB) (string, error) {
	body := sanitize.Taint(core.NewString("taint-probe body"), "probe")
	want, err := core.EncodeSpans(body)
	if err != nil {
		return "", err
	}
	if _, err := c.QueryRaw(
		"INSERT INTO messages (id, forum, author, subject, body) VALUES (?, ?, ?, ?, ?)",
		-1, 99, "probe", "probe", body); err != nil {
		return "", err
	}
	res, err := c.QueryRaw("SELECT body FROM messages WHERE forum = 99")
	if err != nil {
		return "", err
	}
	if res.Len() != 1 {
		return "", fmt.Errorf("probe row count %d", res.Len())
	}
	got, err := core.EncodeSpans(res.Get(0, "body").Str)
	if err != nil {
		return "", err
	}
	if string(got) != string(want) {
		return "", fmt.Errorf("wire annotation %s != written %s", got, want)
	}
	if local != nil {
		inProc, err := local.QueryRaw("SELECT body FROM messages WHERE forum = 99")
		if err != nil {
			return "", err
		}
		localAnn, err := core.EncodeSpans(inProc.Get(0, "body").Str)
		if err != nil {
			return "", err
		}
		if string(got) != string(localAnn) {
			return "", fmt.Errorf("wire annotation %s != in-process %s", got, localAnn)
		}
	}
	return "ok", nil
}

// runAuditProbe drives a tainted value across every instrumented
// boundary class and replays the /audit trace against it: an in-process
// forum app posts a body (httpd taint filter is the source), the body is
// re-read from its SQL shadow column, shipped over the wire connection
// both directions, and the /audit endpoint must report each crossing in
// execution order. Recording is enabled only for the probe — the load
// itself runs with the gate closed.
func runAuditProbe(c *wire.Conn) (string, error) {
	lineage.Reset()
	lineage.Enable()
	defer func() {
		lineage.Disable()
		lineage.Reset()
	}()

	rt := core.NewRuntime()
	app := forum.New(rt, nil, true)
	sess := app.Server.NewSession("admin")
	resp, err := app.Server.Do("POST", "/post", map[string]string{
		"forum": "1", "subject": "audit probe", "body": "lineage-audit-probe-body",
	}, sess)
	if err != nil {
		return "", fmt.Errorf("post: %w", err)
	}
	reply := resp.RawBody()
	if !strings.HasPrefix(reply, "posted #") {
		return "", fmt.Errorf("unexpected post reply %q", reply)
	}
	id, err := strconv.Atoi(strings.TrimPrefix(reply, "posted #"))
	if err != nil {
		return "", fmt.Errorf("parse post id from %q: %w", reply, err)
	}

	res, err := app.DB.QueryRaw("SELECT body FROM messages WHERE id = ?", id)
	if err != nil {
		return "", fmt.Errorf("body read-back: %w", err)
	}
	if res.Len() != 1 {
		return "", fmt.Errorf("body read-back: %d rows", res.Len())
	}
	body := res.Get(0, "body").Str
	if !body.IsTainted() {
		return "", fmt.Errorf("posted body lost its policies")
	}

	// Wire hop: the tainted body crosses the connection in both
	// directions — the bound argument is encoded on send, the selected
	// row decoded on receive — so the wire edges record client-side even
	// against an external server.
	if _, err := c.QueryRaw(
		"INSERT INTO messages (id, forum, author, subject, body) VALUES (?, ?, ?, ?, ?)",
		-2, 98, "auditor", "audit probe", body); err != nil {
		return "", fmt.Errorf("wire insert: %w", err)
	}
	if _, err := c.QueryRaw("SELECT body FROM messages WHERE forum = 98"); err != nil {
		return "", fmt.Errorf("wire select: %w", err)
	}

	aresp, err := app.Server.Do("GET", "/audit", map[string]string{"msg": strconv.Itoa(id)}, sess)
	if err != nil {
		return "", fmt.Errorf("audit: %w", err)
	}
	text := aresp.RawBody()
	pos := 0
	for _, marker := range []string{
		"filter:TaintReadFilter(http)",
		"sql-store", "sql:messages.body",
		"sql-load",
		"wire-send", "wire-recv",
	} {
		i := strings.Index(text[pos:], marker)
		if i < 0 {
			return "", fmt.Errorf("audit trace missing %q after offset %d:\n%s", marker, pos, text)
		}
		pos += i
	}
	return "ok", nil
}

// raiseFDLimit lifts the soft file-descriptor limit toward the hard
// limit: a self-contained 1000-connection run holds both socket ends in
// one process.
func raiseFDLimit(conns int) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return
	}
	need := uint64(conns)*3 + 256
	if rl.Cur >= need {
		return
	}
	rl.Cur = rl.Max
	if rl.Cur > need {
		rl.Cur = need
	}
	syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl) //nolint:errcheck
	if rl.Cur < need {
		log.Printf("resin-loadgen: fd limit %d below the ~%d needed for %d connections; expect dial failures",
			rl.Cur, need, conns)
	}
}
