package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeApp lays out a synthetic repo root with one app file.
func writeApp(t *testing.T, content string) string {
	t.Helper()
	root := t.TempDir()
	p := filepath.Join(root, "internal", "apps", "demo", "app.go")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

const cleanApp = `package demo

import "resin/internal/sqldb"

type App struct{ DB *sqldb.DB }

func (a *App) list() {
	a.DB.QueryRaw("SELECT * FROM t")
}
`

const suppressedApp = `package demo

import (
	"resin/internal/httpd"
	"resin/internal/sqldb"
)

type App struct{ DB *sqldb.DB }

func (a *App) search(req *httpd.Request) {
	//resin:vet-allow sql-concat deliberate demo bug
	a.DB.QueryRaw("SELECT * FROM t WHERE name = '" + req.ParamRaw("name") + "'")
}
`

func runVet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunCleanTreeExitsZero(t *testing.T) {
	root := writeApp(t, cleanApp)
	code, out, errOut := runVet(t, "-root", root)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errOut)
	}
	if !strings.Contains(out, "clean") {
		t.Fatalf("stdout = %q", out)
	}
}

func TestRunUnsuppressedFindingExitsOne(t *testing.T) {
	root := writeApp(t, `package demo

import (
	"resin/internal/httpd"
	"resin/internal/sqldb"
)

type App struct{ DB *sqldb.DB }

func (a *App) search(req *httpd.Request) {
	a.DB.QueryRaw("SELECT * FROM t WHERE name = '" + req.ParamRaw("name") + "'")
}
`)
	code, out, _ := runVet(t, "-root", root)
	if code != 1 {
		t.Fatalf("exit = %d, stdout = %s", code, out)
	}
	if !strings.Contains(out, "sql-concat") {
		t.Fatalf("stdout = %q", out)
	}
}

func TestRunWriteThenCheckRoundTrip(t *testing.T) {
	root := writeApp(t, suppressedApp)
	cert := filepath.Join(root, "cert.json")
	if code, _, errOut := runVet(t, "-root", root, "-write", cert); code != 0 {
		t.Fatalf("-write exit = %d, stderr = %s", code, errOut)
	}
	if code, out, errOut := runVet(t, "-root", root, "-check", cert); code != 0 {
		t.Fatalf("-check exit = %d, stderr = %s", code, errOut)
	} else if !strings.Contains(out, "verified") {
		t.Fatalf("stdout = %q", out)
	}
}

func TestRunCheckFailsOnTamperedCertificate(t *testing.T) {
	root := writeApp(t, suppressedApp)
	cert := filepath.Join(root, "cert.json")
	if code, _, errOut := runVet(t, "-root", root, "-write", cert); code != 0 {
		t.Fatalf("-write exit = %d, stderr = %s", code, errOut)
	}
	raw, err := os.ReadFile(cert)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), "deliberate demo bug", "nothing to see", 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(cert, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runVet(t, "-root", root, "-check", cert)
	if code != 1 || !strings.Contains(errOut, "checksum") {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
}

func TestRunCheckFailsWhenSuppressionRemoved(t *testing.T) {
	root := writeApp(t, suppressedApp)
	cert := filepath.Join(root, "cert.json")
	if code, _, errOut := runVet(t, "-root", root, "-write", cert); code != 0 {
		t.Fatalf("-write exit = %d, stderr = %s", code, errOut)
	}
	// Remove the vet-allow comment: the certified suppression is now stale
	// and the underlying finding resurfaces unsuppressed.
	app := filepath.Join(root, "internal", "apps", "demo", "app.go")
	raw, err := os.ReadFile(app)
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.Replace(string(raw), "\t//resin:vet-allow sql-concat deliberate demo bug\n", "", 1)
	if stripped == string(raw) {
		t.Fatal("suppression comment not found")
	}
	if err := os.WriteFile(app, []byte(stripped), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runVet(t, "-root", root, "-check", cert)
	if code != 1 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
}

func TestRunWriteRefusesUnsuppressedFindings(t *testing.T) {
	root := writeApp(t, `package demo

import (
	"resin/internal/httpd"
	"resin/internal/sqldb"
)

type App struct{ DB *sqldb.DB }

func (a *App) search(req *httpd.Request) {
	a.DB.QueryRaw("SELECT * FROM t WHERE name = '" + req.ParamRaw("name") + "'")
}
`)
	cert := filepath.Join(root, "cert.json")
	code, _, errOut := runVet(t, "-root", root, "-write", cert)
	if code != 1 || !strings.Contains(errOut, "unsuppressed") {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	if _, err := os.Stat(cert); !os.IsNotExist(err) {
		t.Fatal("certificate written despite unsuppressed findings")
	}
}

func TestRunWriteAndCheckAreExclusive(t *testing.T) {
	if code, _, _ := runVet(t, "-write", "a.json", "-check", "b.json"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
