// Command resin-vet is the static pre-flight boundary checker: it
// AST-scans every internal/apps package for SQL text assembled from
// non-constant parts, HTTP output that bypasses the channel filter
// chain, and uses of internal/core outside its public boundary API
// (rules: docs/VET.md).
//
// Modes:
//
//	resin-vet                  scan and print findings (exit 1 if any
//	                           unsuppressed)
//	resin-vet -write CERT      scan and write the certificate (refuses
//	                           while unsuppressed findings exist)
//	resin-vet -check CERT      re-verify a committed certificate
//	                           against a fresh scan; exit 1 on drift
//
// The certificate (docs/vet-certificate.json) is machine-generated and
// checksummed; fixed-finding records come from docs/vet-fixed.log.
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
