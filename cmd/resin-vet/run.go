package main

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"

	"resin/internal/vet"
)

// run is the testable entry point; it returns the process exit code:
// 0 clean, 1 findings or drift, 2 usage or I/O failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("resin-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "repository root to scan")
	write := fs.String("write", "", "write the certificate to this path and exit")
	check := fs.String("check", "", "verify this certificate against a fresh scan")
	fixedLog := fs.String("fixedlog", "", "fixed-findings record (default <root>/docs/vet-fixed.log)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *write != "" && *check != "" {
		fmt.Fprintln(stderr, "resin-vet: -write and -check are mutually exclusive")
		return 2
	}
	if *fixedLog == "" {
		*fixedLog = filepath.Join(*root, "docs", "vet-fixed.log")
	}

	findings, err := vet.ScanApps(*root)
	if err != nil {
		fmt.Fprintln(stderr, "resin-vet:", err)
		return 2
	}

	switch {
	case *write != "":
		fixed, err := vet.LoadFixedLog(*fixedLog)
		if err != nil {
			fmt.Fprintln(stderr, "resin-vet:", err)
			return 2
		}
		cert, err := vet.BuildCertificate(findings, fixed)
		if err != nil {
			fmt.Fprintln(stderr, "resin-vet:", err)
			printFindings(stderr, findings, true)
			return 1
		}
		if err := vet.WriteCertificate(*write, cert); err != nil {
			fmt.Fprintln(stderr, "resin-vet:", err)
			return 2
		}
		fmt.Fprintf(stdout, "resin-vet: wrote %s (%d findings: %d fixed, %d suppressed)\n",
			*write, len(cert.Findings), countStatus(cert, "fixed"), countStatus(cert, "suppressed"))
		return 0

	case *check != "":
		cert, err := vet.LoadCertificate(*check)
		if err != nil {
			fmt.Fprintln(stderr, "resin-vet:", err)
			return 1
		}
		if err := vet.CheckCertificate(cert, findings); err != nil {
			fmt.Fprintln(stderr, "resin-vet:", err)
			return 1
		}
		fmt.Fprintf(stdout, "resin-vet: %s verified against %d live findings (%d certificate entries)\n",
			*check, len(findings), len(cert.Findings))
		return 0

	default:
		printFindings(stdout, findings, false)
		for _, f := range findings {
			if !f.Suppressed {
				return 1
			}
		}
		fmt.Fprintf(stdout, "resin-vet: clean (%d suppressed findings)\n", len(findings))
		return 0
	}
}

func printFindings(w io.Writer, findings []vet.Finding, onlyUnsuppressed bool) {
	for _, f := range findings {
		if f.Suppressed {
			if !onlyUnsuppressed {
				fmt.Fprintf(w, "%s:%d: [%s] suppressed (%s): %s\n", f.File, f.Line, f.Rule, f.Reason, f.Detail)
			}
			continue
		}
		fmt.Fprintf(w, "%s:%d: [%s] %s\n", f.File, f.Line, f.Rule, f.Detail)
	}
}

func countStatus(c *vet.Certificate, status string) int {
	n := 0
	for _, e := range c.Findings {
		if e.Status == status {
			n++
		}
	}
	return n
}
